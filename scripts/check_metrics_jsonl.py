#!/usr/bin/env python3
"""Validate a metrics JSONL file emitted by cid_sim/cid_sweep --metrics.

Usage: check_metrics_jsonl.py FILE... [--require-kind KIND ...]
       check_metrics_jsonl.py --prom FILE... [--require-metric NAME ...]

Schema (src/obs/sink.hpp): every line is a standalone JSON object whose
first keys are {"metrics_version":1,"kind":"<kind>"}. Known kinds:

  snapshot  counter-registry dump: "seq" (monotonic per file),
            "counters" object (name -> number, names sorted), and
            "histograms" array of {name, bounds, buckets, count, sum}
            where len(buckets) == len(bounds) + 1 (last bucket is
            overflow) and count == sum(buckets).
  trial     one sweep trial row: cell/protocol/n/trial identity plus the
            outcome and deterministic work counters.

Unknown kinds fail: a writer adding a record shape must bump this
checker (and kMetricsVersion if the change is incompatible) in the same
PR. --require-kind KIND (repeatable) additionally fails when the file
contains no record of that kind — CI uses it to prove the smoke run
actually exercised both writers.

--prom switches to Prometheus 0.0.4 text exposition (what the cid_serve
fleet /metrics endpoint and --metrics-prom emit): every sample must
carry the cid_ prefix and a preceding # TYPE declaration, counters must
be non-negative, and histogram series must have non-decreasing
cumulative _bucket values ending in an le="+Inf" bucket that equals
_count. --require-metric NAME (repeatable) fails unless a sample of
that metric is present — CI uses it to prove the fleet endpoint really
aggregated coordinator and worker counters.
"""
import json
import re
import sys

METRICS_VERSION = 1

TRIAL_NUMERIC_FIELDS = [
    "cell", "n", "trial", "rounds", "converged", "movers", "potential",
    "social_cost", "latency_evals", "ran_rounds", "engine_rows_filled",
    "engine_rows_pruned",
]


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_snapshot(record, where, errors, state):
    seq = record.get("seq")
    if not isinstance(seq, int):
        errors.append(f"{where}: snapshot missing integer 'seq'")
    else:
        last = state.get("last_seq")
        if last is not None and seq <= last:
            errors.append(f"{where}: snapshot seq {seq} not monotonic "
                          f"(previous {last})")
        state["last_seq"] = seq
    counters = record.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{where}: snapshot missing 'counters' object")
    else:
        for name, value in counters.items():
            if not name or not is_number(value):
                errors.append(f"{where}: bad counter entry "
                              f"{name!r}: {value!r}")
        names = list(counters)
        if names != sorted(names):
            errors.append(f"{where}: counter names not sorted")
    histograms = record.get("histograms")
    if not isinstance(histograms, list):
        errors.append(f"{where}: snapshot missing 'histograms' array")
        return
    for hist in histograms:
        name = hist.get("name") if isinstance(hist, dict) else None
        label = f"{where} histogram {name!r}"
        if not isinstance(hist, dict) or not name:
            errors.append(f"{label}: not an object with a name")
            continue
        bounds = hist.get("bounds")
        buckets = hist.get("buckets")
        if (not isinstance(bounds, list) or not isinstance(buckets, list)
                or len(buckets) != len(bounds) + 1):
            errors.append(f"{label}: need len(buckets) == len(bounds)+1")
            continue
        if any(not is_number(b) for b in bounds) or \
                bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            errors.append(f"{label}: bounds not strictly increasing")
        if any(not isinstance(b, int) or b < 0 for b in buckets):
            errors.append(f"{label}: bucket counts must be ints >= 0")
        elif hist.get("count") != sum(buckets):
            errors.append(f"{label}: count {hist.get('count')} != "
                          f"sum(buckets) {sum(buckets)}")
        if not is_number(hist.get("sum")):
            errors.append(f"{label}: missing numeric 'sum'")


def check_trial(record, where, errors):
    if not isinstance(record.get("protocol"), str):
        errors.append(f"{where}: trial missing string 'protocol'")
    for field in TRIAL_NUMERIC_FIELDS:
        if not is_number(record.get(field)):
            errors.append(f"{where}: trial missing numeric '{field}'")


SAMPLE_RE = re.compile(
    r'^([A-Za-z_:][A-Za-z0-9_:]*)'          # metric name
    r'(?:\{([^}]*)\})?'                     # optional {labels}
    r' (nan|[+-]?(?:inf|Inf|[0-9].*))$')    # value (one space separator)


def prom_base_name(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def check_prom_file(path, errors, metrics_seen):
    """Validate one Prometheus 0.0.4 text file; returns the sample count."""
    typed = {}       # metric name -> declared type
    histograms = {}  # name -> {"last": float, "inf": float|None,
                     #          "sum": bool, "count": float|None}
    samples = 0
    with open(path) as f:
        for i, raw in enumerate(f, 1):
            where = f"{path}:{i}"
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) != 4:
                        errors.append(f"{where}: malformed # TYPE line")
                        continue
                    name, kind = parts[2], parts[3]
                    if not name.startswith("cid_"):
                        errors.append(
                            f"{where}: metric {name!r} lacks the cid_ prefix")
                    if kind not in ("counter", "gauge", "histogram"):
                        errors.append(f"{where}: unknown TYPE {kind!r}")
                    if name in typed:
                        errors.append(f"{where}: duplicate TYPE for {name!r}")
                    typed[name] = kind
                    if kind == "histogram":
                        histograms[name] = {"last": None, "inf": None,
                                            "sum": False, "count": None}
                continue  # other comments are legal and ignored
            match = SAMPLE_RE.match(line)
            if not match:
                errors.append(f"{where}: unparseable sample: {line!r}")
                continue
            samples += 1
            name, labels, text = match.groups()
            base = prom_base_name(name)
            kind = typed.get(name) if name in typed else typed.get(base)
            if kind is None:
                errors.append(f"{where}: sample {name!r} has no preceding "
                              f"# TYPE declaration")
                continue
            metrics_seen.add(name)
            metrics_seen.add(base)
            try:
                value = float(text)
            except ValueError:
                errors.append(f"{where}: bad sample value {text!r}")
                continue
            if kind == "counter" and value < 0:
                errors.append(f"{where}: counter {name!r} is negative")
            if kind == "histogram" and base in histograms:
                state = histograms[base]
                if name.endswith("_bucket"):
                    if 'le="' not in (labels or ""):
                        errors.append(f"{where}: bucket without an le label")
                    elif 'le="+Inf"' in labels:
                        state["inf"] = value
                    elif state["inf"] is not None:
                        errors.append(f"{where}: bucket after le=\"+Inf\"")
                    if state["last"] is not None and value < state["last"]:
                        errors.append(f"{where}: cumulative bucket counts "
                                      f"of {base!r} decreased")
                    state["last"] = value
                elif name.endswith("_sum"):
                    state["sum"] = True
                elif name.endswith("_count"):
                    state["count"] = value
    for name, state in histograms.items():
        if state["inf"] is None or not state["sum"] or state["count"] is None:
            errors.append(f"{path}: histogram {name!r} missing "
                          f"le=\"+Inf\" bucket, _sum, or _count")
        elif state["count"] != state["inf"]:
            errors.append(f"{path}: histogram {name!r} _count "
                          f"{state['count']} != +Inf bucket {state['inf']}")
    if samples == 0:
        errors.append(f"{path}: no samples")
    return samples


def check_file(path, errors, kinds_seen, metrics_seen):
    state = {}
    lines = 0
    with open(path) as f:
        for i, line in enumerate(f, 1):
            where = f"{path}:{i}"
            line = line.strip()
            if not line:
                errors.append(f"{where}: blank line")
                continue
            lines += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: not valid JSON: {e}")
                continue
            if not isinstance(record, dict):
                errors.append(f"{where}: line is not a JSON object")
                continue
            if record.get("metrics_version") != METRICS_VERSION:
                errors.append(f"{where}: metrics_version != "
                              f"{METRICS_VERSION}: "
                              f"{record.get('metrics_version')!r}")
            kind = record.get("kind")
            kinds_seen.add(kind)
            if kind == "snapshot":
                check_snapshot(record, where, errors, state)
                counters = record.get("counters")
                if isinstance(counters, dict):
                    metrics_seen.update(counters)
                for hist in record.get("histograms") or []:
                    if isinstance(hist, dict) and hist.get("name"):
                        metrics_seen.add(hist["name"])
            elif kind == "trial":
                check_trial(record, where, errors)
            else:
                errors.append(f"{where}: unknown kind {kind!r}")
    if lines == 0:
        errors.append(f"{path}: empty file")
    return lines


def main():
    paths, required_kinds, required_metrics = [], [], []
    prom = False
    args = iter(sys.argv[1:])
    for arg in args:
        if arg == "--require-kind":
            required_kinds.append(next(args, None))
        elif arg == "--require-metric":
            required_metrics.append(next(args, None))
        elif arg == "--prom":
            prom = True
        else:
            paths.append(arg)
    if not paths or None in required_kinds or None in required_metrics:
        print(__doc__, file=sys.stderr)
        return 2
    if prom and required_kinds:
        print("FAIL: --require-kind applies to JSONL mode only",
              file=sys.stderr)
        return 2
    errors = []
    kinds_seen = set()
    metrics_seen = set()
    if prom:
        total = sum(check_prom_file(p, errors, metrics_seen) for p in paths)
    else:
        total = sum(check_file(p, errors, kinds_seen, metrics_seen)
                    for p in paths)
    for kind in required_kinds:
        if kind not in kinds_seen:
            errors.append(f"no '{kind}' record in {', '.join(paths)}")
    for name in required_metrics:
        if name not in metrics_seen:
            errors.append(f"no '{name}' metric in {', '.join(paths)}")
    for err in errors:
        print(f"FAIL: {err}")
    if errors:
        print(f"FAIL: {len(errors)} schema violation(s)")
        return 1
    unit = "sample(s)" if prom else "metrics record(s)"
    kinds = "" if prom else (
        ", kinds: " + ", ".join(sorted(k for k in kinds_seen if k)))
    print(f"OK: {total} {unit} across {len(paths)} file(s){kinds}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
