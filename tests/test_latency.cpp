#include <gtest/gtest.h>

#include <cmath>

#include "latency/latency.hpp"
#include "util/assert.hpp"

namespace cid {
namespace {

TEST(ConstantLatency, ValueDerivativeElasticity) {
  ConstantLatency fn(4.0);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 4.0);
  EXPECT_DOUBLE_EQ(fn.value(100.0), 4.0);
  EXPECT_DOUBLE_EQ(fn.derivative(10.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.elasticity_upper(1000.0), 0.0);
  EXPECT_THROW(ConstantLatency(0.0), invariant_violation);
}

TEST(MonomialLatency, ValueAndExactElasticity) {
  MonomialLatency fn(2.0, 3.0);  // 2x^3
  EXPECT_DOUBLE_EQ(fn.value(2.0), 16.0);
  EXPECT_DOUBLE_EQ(fn.derivative(2.0), 24.0);
  EXPECT_DOUBLE_EQ(fn.elasticity_upper(1e6), 3.0);
  EXPECT_THROW(fn.value(-1.0), invariant_violation);
  EXPECT_THROW(MonomialLatency(-1.0, 2.0), invariant_violation);
  EXPECT_THROW(MonomialLatency(1.0, -2.0), invariant_violation);
}

TEST(MonomialLatency, LinearDerivativeAtZero) {
  MonomialLatency lin(5.0, 1.0);
  EXPECT_DOUBLE_EQ(lin.derivative(0.0), 5.0);
  MonomialLatency quad(5.0, 2.0);
  EXPECT_DOUBLE_EQ(quad.derivative(0.0), 0.0);
}

TEST(PolynomialLatency, HornerEvaluation) {
  PolynomialLatency fn({1.0, 2.0, 3.0});  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(fn.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.value(2.0), 17.0);
  EXPECT_DOUBLE_EQ(fn.derivative(2.0), 14.0);
  EXPECT_EQ(fn.degree(), 2);
}

TEST(PolynomialLatency, ElasticityIsMaxActiveDegree) {
  PolynomialLatency fn({1.0, 0.0, 3.0, 0.0});  // trailing zero trimmed
  EXPECT_EQ(fn.degree(), 2);
  EXPECT_DOUBLE_EQ(fn.elasticity_upper(100.0), 2.0);
  PolynomialLatency constant({5.0});
  EXPECT_DOUBLE_EQ(constant.elasticity_upper(100.0), 0.0);
}

TEST(PolynomialLatency, RejectsInvalidCoefficients) {
  EXPECT_THROW(PolynomialLatency({}), invariant_violation);
  EXPECT_THROW(PolynomialLatency({1.0, -2.0}), invariant_violation);
  EXPECT_THROW(PolynomialLatency({0.0, 0.0}), invariant_violation);
}

TEST(ScaledLatency, MatchesBaseOnScaledArgument) {
  auto base = make_monomial(2.0, 2.0);
  ScaledLatency fn(base, 100);
  EXPECT_DOUBLE_EQ(fn.value(50.0), base->value(0.5));
  // Elasticity invariant under scaling.
  EXPECT_NEAR(fn.elasticity_upper(100.0), 2.0, 1e-9);
  // Derivative shrinks by 1/n (chain rule).
  EXPECT_NEAR(fn.derivative(50.0), base->derivative(0.5) / 100.0, 1e-9);
}

TEST(ScaledLatency, NuShrinksWithN) {
  // The §5 point: scaling leaves elasticity fixed but shrinks the step ν.
  auto base = make_linear(1.0);
  const double nu_small = slope_nu(ScaledLatency(base, 10), 1.0);
  const double nu_large = slope_nu(ScaledLatency(base, 1000), 1.0);
  EXPECT_NEAR(nu_small / nu_large, 100.0, 1e-6);
}

TEST(ExponentialLatency, UnboundedElasticityGrowsWithDomain) {
  ExponentialLatency fn(1.0, 0.1);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 1.0);
  EXPECT_NEAR(fn.elasticity_upper(10.0), 1.0, 1e-12);
  EXPECT_NEAR(fn.elasticity_upper(100.0), 10.0, 1e-12);
}

TEST(NumericFallback, ElasticityUpperBoundsTruth) {
  // The generic numeric elasticity (used by classes without closed forms)
  // must upper-bound the analytic value; check against x^2 via a thin
  // wrapper that hides the override.
  class Opaque final : public LatencyFunction {
   public:
    double value(double x) const override { return 3.0 * x * x + 1e-9; }
    std::string describe() const override { return "opaque"; }
  };
  Opaque fn;
  const double est = fn.elasticity_upper(1000.0);
  EXPECT_GE(est, 2.0 - 1e-6);
  EXPECT_LE(est, 2.4);  // not wildly conservative either
}

TEST(SlopeNu, MaxStepOnAlmostEmptyResource) {
  // x^2: steps are 1, 3, 5, ... so nu over {1..d} with d=3 is 5.
  auto quad = make_monomial(1.0, 2.0);
  EXPECT_DOUBLE_EQ(slope_nu(*quad, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(slope_nu(*quad, 1.0), 1.0);
  // Constant function: zero slope.
  EXPECT_DOUBLE_EQ(slope_nu(*make_constant(7.0), 4.0), 0.0);
  // d < 1 is treated as window {1}.
  EXPECT_DOUBLE_EQ(slope_nu(*quad, 0.2), 1.0);
}

TEST(MaxStepSlope, ScansFullRange) {
  auto quad = make_monomial(1.0, 2.0);
  // Steps up to n=5: 1,3,5,7,9.
  EXPECT_DOUBLE_EQ(max_step_slope(*quad, 5), 9.0);
  EXPECT_THROW(max_step_slope(*quad, 0), invariant_violation);
}

TEST(Factories, DescribeStrings) {
  EXPECT_EQ(make_linear(2.0)->describe(), "2*x^1");
  EXPECT_NE(make_affine(2.0, 1.0)->describe().find("2*x"), std::string::npos);
  EXPECT_NE(make_scaled(make_linear(1.0), 10)->describe().find("x/10"),
            std::string::npos);
}

}  // namespace
}  // namespace cid
