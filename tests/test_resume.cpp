// Kill-and-resume guarantees (the acceptance contract of src/persist/):
//
//   * a run checkpointed at round k and resumed produces a final state,
//     trace, and event log byte-identical to the uninterrupted run;
//   * replaying snapshot + event log reconstructs the final state with
//     zero RNG draws (replay_rounds takes no Rng at all — the test checks
//     the reconstruction is exact).
//
// The test game uses integer-coefficient latencies so every potential /
// latency value is an exactly-representable integer: the incremental
// potential tracker and a fresh recomputation then agree bit-for-bit, and
// "byte-identical trace" is meaningful rather than hostage to summation
// order.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/trace.hpp"
#include "dynamics/engine.hpp"
#include "game/builders.hpp"
#include "persist/binio.hpp"
#include "game/io.hpp"
#include "latency/latency.hpp"
#include "persist/checkpoint.hpp"
#include "persist/eventlog.hpp"
#include "persist/snapshot.hpp"
#include "protocols/combined.hpp"
#include "protocols/imitation.hpp"

namespace cid::persist {
namespace {

// The kill lands early in the active phase (migration on this instance
// persists for ~25 rounds from a uniform start), so the resumed segment
// carries real migrations — the test guards against a vacuous tail below.
constexpr std::int64_t kTotalRounds = 40;
constexpr std::int64_t kKillRound = 5;
constexpr std::uint64_t kSeed = 42;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Integer-latency singleton game (see file comment).
CongestionGame make_game() {
  std::vector<LatencyPtr> fns;
  for (int e = 0; e < 6; ++e) {
    fns.push_back(make_linear(static_cast<double>(1 + e)));
  }
  return make_singleton_game(std::move(fns), 5000);
}

std::unique_ptr<Protocol> make_protocol() {
  ImitationParams ip;
  ExplorationParams ep;
  return std::make_unique<CombinedProtocol>(ip, ep, 0.5);
}

SimConfig make_config() {
  SimConfig config;
  config.protocol = "combined";
  config.engine = static_cast<std::uint8_t>(EngineMode::kAggregate);
  config.stop = "nash";  // never fires on this instance within the horizon
  return config;
}

struct RunArtifacts {
  std::vector<std::int64_t> final_counts;
  std::array<std::uint64_t, 4> rng_state{};
  std::vector<RoundRecord> trace;
  std::string event_log_bytes;
};

/// The uninterrupted reference: one run over [0, kTotalRounds).
RunArtifacts uninterrupted(const std::string& log_path) {
  const CongestionGame game = make_game();
  Rng rng(kSeed);
  State x = State::uniform_random(game, rng);
  const auto protocol = make_protocol();

  TraceRecorder trace(game, x, 5);
  EventLogWriter log = EventLogWriter::create(log_path);
  RunOptions options;
  options.max_rounds = kTotalRounds;
  const RunResult result =
      run_dynamics(game, x, *protocol, rng, options, nullptr,
                   chain_observers(trace.observer(), log.observer()));
  log.close();
  EXPECT_EQ(result.rounds, kTotalRounds);

  RunArtifacts artifacts;
  artifacts.final_counts.assign(x.counts().begin(), x.counts().end());
  artifacts.rng_state = rng.state();
  artifacts.trace = trace.records();
  artifacts.event_log_bytes = slurp_file(log_path);
  return artifacts;
}

TEST(KillAndResume, ByteIdenticalToUninterruptedRun) {
  const std::string full_log = temp_path("full.elog");
  const std::string resumed_log = temp_path("resumed.elog");
  const std::string snap = temp_path("kill.snap");
  const RunArtifacts reference = uninterrupted(full_log);

  // Leg 1: run to kKillRound, checkpointing only at the end (the "kill").
  {
    const CongestionGame game = make_game();
    Rng rng(kSeed);
    State x = State::uniform_random(game, rng);
    const auto protocol = make_protocol();
    TraceRecorder trace(game, x, 5);
    EventLogWriter log = EventLogWriter::create(resumed_log);
    const Checkpointer checkpointer(game, rng, CheckpointConfig{snap, 0},
                                    make_config());
    RunOptions options;
    options.max_rounds = kKillRound;
    run_dynamics(game, x, *protocol, rng, options, nullptr,
                 chain_observers(
                     chain_observers(trace.observer(), log.observer()),
                     checkpointer.observer()));
    log.close();
  }

  // Leg 2: resume from the snapshot in a fresh "process" (no state shared
  // with leg 1 beyond the files on disk).
  ResumedRun resumed = resume_run(snap);
  EXPECT_EQ(resumed.round, kKillRound);
  EXPECT_EQ(resumed.protocol->name(), make_protocol()->name());
  TraceRecorder trace(*resumed.game, resumed.state, 5);
  EventLogWriter log =
      EventLogWriter::open_for_append(resumed_log, resumed.round);
  RunOptions options;
  options.max_rounds = kTotalRounds;
  options.start_round = resumed.round;
  options.mode = resumed.mode;
  const RunResult result = run_dynamics(
      *resumed.game, resumed.state, *resumed.protocol, resumed.rng, options,
      nullptr, chain_observers(trace.observer(), log.observer()));
  log.close();
  EXPECT_EQ(result.rounds, kTotalRounds);

  // Final state and RNG stream position: identical.
  const std::vector<std::int64_t> final_counts(
      resumed.state.counts().begin(), resumed.state.counts().end());
  EXPECT_EQ(final_counts, reference.final_counts);
  EXPECT_EQ(resumed.rng.state(), reference.rng_state);

  // Event log: the appended file is byte-identical to the uninterrupted
  // run's, including the rounds written before the kill.
  EXPECT_EQ(slurp_file(resumed_log), reference.event_log_bytes);

  // Trace: leg-2 records must equal the uninterrupted tail exactly, field
  // by field (bitwise doubles — integer latencies make this well-defined).
  const auto& tail = trace.records();
  ASSERT_GE(reference.trace.size(), tail.size());
  const std::size_t offset = reference.trace.size() - tail.size();
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const RoundRecord& a = reference.trace[offset + i];
    const RoundRecord& b = tail[i];
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.potential, b.potential);
    EXPECT_EQ(a.average_latency, b.average_latency);
    EXPECT_EQ(a.plus_average_latency, b.plus_average_latency);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.movers, b.movers);
    EXPECT_EQ(a.support_size, b.support_size);
  }
  // And the resumed segment genuinely moved players (the test would be
  // vacuous if the dynamics had frozen before the kill).
  std::int64_t tail_movers = 0;
  for (const auto& record : tail) tail_movers += record.movers;
  EXPECT_GT(tail_movers, 0);

  std::remove(full_log.c_str());
  std::remove(resumed_log.c_str());
  std::remove(snap.c_str());
}

TEST(Replay, ReconstructsFinalStateWithZeroRngDraws) {
  const std::string log_path = temp_path("replay.elog");
  const std::string initial_snap = temp_path("initial.snap");
  const std::string final_snap = temp_path("final.snap");

  // One checkpointed run: snapshot at round 0 and at the end, full log.
  {
    const CongestionGame game = make_game();
    Rng rng(kSeed);
    State x = State::uniform_random(game, rng);
    const auto protocol = make_protocol();
    const Checkpointer checkpointer(game, rng,
                                    CheckpointConfig{final_snap, 0},
                                    make_config());
    save_snapshot(make_snapshot(game, x, rng, 0, make_config()),
                  initial_snap);
    EventLogWriter log = EventLogWriter::create(log_path);
    RunOptions options;
    options.max_rounds = kTotalRounds;
    run_dynamics(game, x, *protocol, rng, options, nullptr,
                 chain_observers(log.observer(), checkpointer.observer()));
    log.close();
  }

  // Replay from round 0: replay_rounds takes no Rng — zero draws by
  // construction; the reconstruction must still be exact.
  const Snapshot initial = load_snapshot(initial_snap);
  const Snapshot final_snapshot = load_snapshot(final_snap);
  const EventLog log = read_event_log(log_path);
  EXPECT_FALSE(log.truncated_tail);
  State x = initial.state();
  const std::int64_t applied =
      replay_rounds(initial.game, x, log.rounds, 0, kTotalRounds);
  EXPECT_EQ(applied, kTotalRounds);
  EXPECT_TRUE(x == final_snapshot.state());
  EXPECT_EQ(final_snapshot.round, kTotalRounds);

  // Partial replay to the midpoint must match a cadence checkpoint there.
  const std::string cadence_snap = temp_path("cadence.snap");
  {
    const CongestionGame game = make_game();
    Rng rng(kSeed);
    State y = State::uniform_random(game, rng);
    const auto protocol = make_protocol();
    const Checkpointer checkpointer(
        game, rng, CheckpointConfig{cadence_snap, kKillRound},
        make_config());
    RunOptions options;
    options.max_rounds = kKillRound;  // last cadence write IS round 60
    run_dynamics(game, y, *protocol, rng, options, nullptr,
                 checkpointer.observer());
  }
  const Snapshot mid = load_snapshot(cadence_snap);
  EXPECT_EQ(mid.round, kKillRound);
  State z = initial.state();
  replay_rounds(initial.game, z, log.rounds, 0, kKillRound);
  EXPECT_TRUE(z == mid.state());

  std::remove(log_path.c_str());
  std::remove(initial_snap.c_str());
  std::remove(final_snap.c_str());
  std::remove(cadence_snap.c_str());
}

TEST(Resume, SaveStateAndLoadStateRoundTripThroughFiles) {
  const CongestionGame game = make_game();
  Rng rng(3);
  const State x = State::uniform_random(game, rng);
  const std::string path = temp_path("state.txt");
  save_state(x, path);
  const State loaded = load_state(game, path);
  EXPECT_TRUE(loaded == x);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cid::persist
