// Property/fuzz tests for the incremental latency caches and the
// provably-zero-row pruning they enable.
//
//   1. Incremental == from-scratch: after arbitrary random State::apply
//      move sequences, a LatencyContext maintained through refresh()
//      equals a freshly reset one EXACTLY (double ==), entry for entry —
//      the invariant the whole batched kernel leans on. Same property for
//      the asymmetric context.
//   2. Pruning soundness: every origin the protocols declare provably
//      zero is re-verified nonzero-free by the per-pair reference
//      move_probability oracle, across random states and all protocols
//      (and the asymmetric pruning against asymmetric_move_probability).
//   3. Monotonicity gate: with a DECREASING latency function in the game,
//      plus_dominates() reports false and every row_provably_zero
//      conservatively declines to prune.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dynamics/asymmetric_engine.hpp"
#include "dynamics/engine.hpp"
#include "game/asymmetric.hpp"
#include "game/builders.hpp"
#include "game/latency_context.hpp"
#include "protocols/combined.hpp"
#include "protocols/exploration.hpp"
#include "protocols/imitation.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

CongestionGame fuzz_network_game(std::int64_t n, std::uint64_t seed) {
  const auto net = make_layered_network(3, 3);
  Rng rng(seed);
  std::vector<LatencyPtr> fns;
  for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
    const double a = 0.25 + rng.uniform();
    fns.push_back(rng.bernoulli(0.5)
                      ? make_linear(a)
                      : make_monomial(0.1 * a, rng.bernoulli(0.5) ? 2.0 : 3.0));
  }
  return make_network_game(net, std::move(fns), n);
}

/// A random feasible migration batch: a handful of (from, to, count)
/// moves whose per-origin outflow respects the current counts.
std::vector<Migration> random_moves(const CongestionGame& game,
                                    const State& x, Rng& rng) {
  std::vector<Migration> moves;
  std::vector<std::int64_t> left(x.counts().begin(), x.counts().end());
  const auto k = static_cast<std::uint64_t>(game.num_strategies());
  const int batch = 1 + static_cast<int>(rng.uniform_int(4));
  for (int i = 0; i < batch; ++i) {
    const auto from = static_cast<StrategyId>(rng.uniform_int(k));
    auto to = static_cast<StrategyId>(rng.uniform_int(k));
    if (to == from) to = static_cast<StrategyId>((to + 1) % k);
    const std::int64_t avail = left[static_cast<std::size_t>(from)];
    if (avail <= 0) continue;
    const auto count = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(avail)) + 1);
    left[static_cast<std::size_t>(from)] -= count;
    moves.push_back(Migration{from, to, count});
  }
  return moves;
}

void expect_context_equals_rebuild(const CongestionGame& game, const State& x,
                                   const LatencyContext& incremental) {
  LatencyContext fresh;
  fresh.reset(game, x);
  for (Resource e = 0; e < game.num_resources(); ++e) {
    ASSERT_EQ(incremental.resource_latency(e), fresh.resource_latency(e))
        << "resource " << e;
    ASSERT_EQ(incremental.resource_latency_plus(e),
              fresh.resource_latency_plus(e))
        << "resource " << e;
  }
  for (StrategyId p = 0; p < game.num_strategies(); ++p) {
    ASSERT_EQ(incremental.strategy_latency(p), fresh.strategy_latency(p))
        << "strategy " << p;
    ASSERT_EQ(incremental.plus_latency(p), fresh.plus_latency(p))
        << "strategy " << p;
    // And both agree with the uncached game methods (the bitwise
    // contract the cached predicates and protocol rows rely on).
    ASSERT_EQ(incremental.strategy_latency(p), game.strategy_latency(x, p));
    ASSERT_EQ(incremental.plus_latency(p), game.plus_latency(x, p));
    for (StrategyId q = 0; q < game.num_strategies(); ++q) {
      ASSERT_EQ(incremental.expost_latency(p, q),
                game.expost_latency(x, p, q))
          << p << "->" << q;
    }
  }
  ASSERT_EQ(incremental.plus_dominates(), fresh.plus_dominates());
}

TEST(LatencyContext, IncrementalRefreshEqualsRebuildUnderRandomApplies) {
  for (const std::uint64_t seed : {7u, 21u, 99u}) {
    const auto game = fuzz_network_game(3000, seed);
    Rng rng(seed * 13 + 1);
    State x = State::uniform_random(game, rng);
    LatencyContext ctx;
    ctx.reset(game, x);
    ApplyScratch scratch;
    for (int step = 0; step < 40; ++step) {
      const auto moves = random_moves(game, x, rng);
      x.apply(game, moves, scratch);
      ctx.refresh(scratch.touched);
      expect_context_equals_rebuild(game, x, ctx);
    }
  }
}

TEST(LatencyContext, SingletonIncrementalRefreshEqualsRebuild) {
  const auto game = make_monomial_fan_game(12, 2.0, 1.0, 500);
  Rng rng(3);
  State x = State::uniform_random(game, rng);
  LatencyContext ctx;
  ctx.reset(game, x);
  ApplyScratch scratch;
  for (int step = 0; step < 60; ++step) {
    const auto moves = random_moves(game, x, rng);
    x.apply(game, moves, scratch);
    ctx.refresh(scratch.touched);
    expect_context_equals_rebuild(game, x, ctx);
  }
}

// ---- Pruning soundness ------------------------------------------------------

std::vector<std::unique_ptr<Protocol>> pruning_protocols() {
  std::vector<std::unique_ptr<Protocol>> protocols;
  protocols.push_back(std::make_unique<ImitationProtocol>());
  ImitationParams virtual_params;
  virtual_params.virtual_agents = 2;
  protocols.push_back(std::make_unique<ImitationProtocol>(virtual_params));
  ImitationParams no_nu;
  no_nu.nu_cutoff = false;
  protocols.push_back(std::make_unique<ImitationProtocol>(no_nu));
  protocols.push_back(std::make_unique<ExplorationProtocol>());
  protocols.push_back(std::make_unique<CombinedProtocol>(
      ImitationParams{}, ExplorationParams{}, 0.5));
  return protocols;
}

TEST(LatencyContext, PrunedRowsVerifiedZeroByReferenceOracle) {
  const auto protocols = pruning_protocols();
  int pruned_total = 0;
  for (const std::uint64_t seed : {5u, 17u}) {
    const auto game = fuzz_network_game(2000, seed);
    Rng rng(seed + 100);
    State x = State::uniform_random(game, rng);
    LatencyContext ctx;
    ctx.reset(game, x);
    ApplyScratch scratch;
    for (int step = 0; step < 20; ++step) {
      const RowBounds bounds = compute_row_bounds(game, x, ctx);
      for (const auto& protocol : protocols) {
        SCOPED_TRACE(protocol->name());
        for (StrategyId from = 0; from < game.num_strategies(); ++from) {
          if (!protocol->row_provably_zero(game, ctx, from, bounds)) {
            continue;
          }
          ++pruned_total;
          for (StrategyId to = 0; to < game.num_strategies(); ++to) {
            if (to == from) continue;
            ASSERT_EQ(protocol->move_probability(game, x, from, to), 0.0)
                << "pruned origin " << from << " has nonzero entry to "
                << to;
          }
        }
      }
      const auto moves = random_moves(game, x, rng);
      x.apply(game, moves, scratch);
      ctx.refresh(scratch.touched);
    }
  }
  // The fuzz states must actually exercise pruning, or this test is vacuous.
  EXPECT_GT(pruned_total, 0);
}

TEST(LatencyContext, SingletonConvergedStatePrunesMinimalOrigins) {
  // Identical links, perfectly balanced state: EVERY origin's row is zero
  // (nobody can improve), so pruning must fire for all of them.
  const auto game = make_uniform_links_game(8, make_linear(1.0), 800);
  const State x(game, std::vector<std::int64_t>(8, 100));
  LatencyContext ctx;
  ctx.reset(game, x);
  const RowBounds bounds = compute_row_bounds(game, x, ctx);
  ASSERT_TRUE(bounds.plus_dominates);
  const ImitationProtocol imitation;
  for (StrategyId p = 0; p < game.num_strategies(); ++p) {
    EXPECT_TRUE(imitation.row_provably_zero(game, ctx, p, bounds));
  }
}

TEST(LatencyContext, DecreasingLatencyDisablesPruning) {
  // A decreasing link makes ℓ_e(x_e+1) < ℓ_e(x_e): plus-dominance fails
  // and every protocol must decline to prune (the sufficient condition
  // ℓ_Q(x+1..) >= ℓ_Q(x) is gone).
  class DecreasingLatency final : public LatencyFunction {
   public:
    double value(double x) const override { return 100.0 - x; }
    std::string describe() const override { return "100-x"; }
  };
  std::vector<LatencyPtr> fns{make_linear(1.0),
                              std::make_shared<DecreasingLatency>(),
                              make_linear(2.0)};
  const auto game = make_singleton_game(std::move(fns), 60);
  const State x(game, {20, 20, 20});
  LatencyContext ctx;
  ctx.reset(game, x);
  EXPECT_FALSE(ctx.plus_dominates());
  const RowBounds bounds = compute_row_bounds(game, x, ctx);
  EXPECT_FALSE(bounds.plus_dominates);
  for (const auto& protocol : pruning_protocols()) {
    SCOPED_TRACE(protocol->name());
    for (StrategyId p = 0; p < game.num_strategies(); ++p) {
      EXPECT_FALSE(protocol->row_provably_zero(game, ctx, p, bounds));
    }
  }
}

// ---- Asymmetric context -----------------------------------------------------

AsymmetricGame fuzz_asymmetric_game() {
  // Three classes over overlapping multi-resource strategies, so refresh
  // pass 2 crosses class boundaries through shared resources.
  std::vector<LatencyPtr> fns;
  for (int e = 0; e < 6; ++e) {
    fns.push_back(e % 2 == 0 ? make_linear(0.5 + 0.25 * e)
                             : make_monomial(0.05 * (e + 1), 2.0));
  }
  std::vector<PlayerClass> classes(3);
  classes[0].strategies = {{0, 1}, {2}, {0, 3}};
  classes[0].num_players = 400;
  classes[1].strategies = {{1, 2}, {3, 4}, {2}};
  classes[1].num_players = 300;
  classes[2].strategies = {{4, 5}, {0, 5}, {1, 3, 5}};
  classes[2].num_players = 500;
  return AsymmetricGame(std::move(fns), std::move(classes));
}

std::vector<ClassMigration> random_class_moves(const AsymmetricGame& game,
                                               const AsymmetricState& x,
                                               Rng& rng) {
  std::vector<ClassMigration> moves;
  const int batch = 1 + static_cast<int>(rng.uniform_int(4));
  for (int i = 0; i < batch; ++i) {
    const auto c = static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(game.num_classes())));
    const auto k = static_cast<std::uint64_t>(
        game.player_class(c).strategies.size());
    const auto from = static_cast<StrategyId>(rng.uniform_int(k));
    auto to = static_cast<StrategyId>(rng.uniform_int(k));
    if (to == from) to = static_cast<StrategyId>((to + 1) % k);
    const std::int64_t avail = x.count(c, from);
    if (avail <= 0) continue;
    // One move per origin per batch keeps the outflow trivially feasible.
    moves.push_back(ClassMigration{
        c, from, to,
        static_cast<std::int64_t>(
            rng.uniform_int(static_cast<std::uint64_t>(avail)) + 1)});
    break;
  }
  return moves;
}

TEST(AsymmetricLatencyContext, IncrementalRefreshEqualsRebuild) {
  const auto game = fuzz_asymmetric_game();
  Rng rng(11);
  AsymmetricState x = AsymmetricState::uniform_random(game, rng);
  AsymmetricLatencyContext ctx;
  ctx.reset(game, x);
  AsymmetricApplyScratch scratch;
  for (int step = 0; step < 50; ++step) {
    const auto moves = random_class_moves(game, x, rng);
    x.apply(game, moves, scratch);
    ctx.refresh(scratch.touched);
    AsymmetricLatencyContext fresh;
    fresh.reset(game, x);
    for (Resource e = 0; e < game.num_resources(); ++e) {
      ASSERT_EQ(ctx.resource_latency(e), fresh.resource_latency(e));
      ASSERT_EQ(ctx.resource_latency_plus(e),
                fresh.resource_latency_plus(e));
    }
    for (std::int32_t c = 0; c < game.num_classes(); ++c) {
      const auto k = static_cast<StrategyId>(
          game.player_class(c).strategies.size());
      for (StrategyId p = 0; p < k; ++p) {
        ASSERT_EQ(ctx.strategy_latency(c, p), fresh.strategy_latency(c, p));
        ASSERT_EQ(ctx.strategy_latency(c, p),
                  game.strategy_latency(x, c, p));
        for (StrategyId q = 0; q < k; ++q) {
          ASSERT_EQ(ctx.expost_latency(c, p, q),
                    game.expost_latency(x, c, p, q));
        }
      }
    }
  }
}

TEST(AsymmetricLatencyContext, BatchedRowMatchesPerPairOracle) {
  const auto game = fuzz_asymmetric_game();
  Rng rng(23);
  AsymmetricState x = AsymmetricState::uniform_random(game, rng);
  AsymmetricLatencyContext ctx;
  ctx.reset(game, x);
  const AsymmetricImitationParams params;
  for (std::int32_t c = 0; c < game.num_classes(); ++c) {
    const auto support = x.support(c);
    std::vector<double> row(support.size());
    for (StrategyId from : support) {
      fill_asymmetric_move_probabilities(game, ctx, params, c, from, support,
                                         row);
      for (std::size_t j = 0; j < support.size(); ++j) {
        const double oracle =
            support[j] == from
                ? 0.0
                : asymmetric_move_probability(game, x, params, c, from,
                                              support[j]);
        ASSERT_EQ(row[j], oracle)
            << "class " << c << " pair " << from << "->" << support[j];
      }
    }
  }
}

}  // namespace
}  // namespace cid
