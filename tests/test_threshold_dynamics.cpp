// Additional depth on the Theorem 6 machinery: potential monotonicity of
// threshold-game dynamics, the exactness of the ×3 construction's latency
// offsets, and behaviour of the forced (unique-improver) runs.
#include <gtest/gtest.h>

#include "lowerbound/maxcut.hpp"
#include "lowerbound/threshold_game.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

TEST(ThresholdDynamics, PotentialStrictlyDecreasesPerToggle) {
  Rng rng(1);
  const auto inst = MaxCutInstance::random(7, 0.7, 9, rng);
  const auto qt = make_quadratic_threshold(inst);
  ThresholdState s = state_from_cut(qt.game, 0);
  double phi = qt.game.potential(s);
  for (int step = 0; step < 10000; ++step) {
    const auto improving = qt.game.improving_players(s);
    if (improving.empty()) break;
    s.toggle(qt.game, improving.front());
    const double next = qt.game.potential(s);
    ASSERT_LT(next, phi);
    phi = next;
  }
  EXPECT_TRUE(qt.game.is_stable(s));
}

TEST(ThresholdDynamics, TripledPotentialDecreasesUnderImitation) {
  Rng rng(2);
  const auto inst = MaxCutInstance::random(6, 0.8, 9, rng);
  const auto tg = triple_quadratic_threshold(inst);
  ThresholdState s = tripled_initial_state(tg, 0b101010 & 0b111111);
  double phi = tg.game.potential(s);
  for (int step = 0; step < 10000; ++step) {
    ThresholdState before = s;
    const auto run = run_tripled_imitation(tg, s, 1);
    if (run.converged) break;
    const double next = tg.game.potential(s);
    ASSERT_LT(next, phi);
    phi = next;
  }
}

TEST(Tripled, LatencyOffsetsMatchThePaper) {
  // §3.2's arithmetic, verified exactly on the canonical start:
  //  * i3's latency = base player's latency + 2·Σ_j a_ij on both strategies;
  //  * all three copies on S_out would pay 3·Σ_j a_ij;
  //  * i2 on S_in with i1,i3 out pays at most 2·Σ_j a_ij.
  Rng rng(3);
  const auto inst = MaxCutInstance::random(5, 1.0, 7, rng);
  const auto qt = make_quadratic_threshold(inst);
  const auto tg = triple_quadratic_threshold(inst);
  for (std::uint32_t cut = 0; cut < 32; ++cut) {
    const ThresholdState base = state_from_cut(qt.game, cut);
    const ThresholdState trip = tripled_initial_state(tg, cut);
    for (int i = 0; i < 5; ++i) {
      double wi = 0.0;
      for (int j = 0; j < 5; ++j) wi += inst.weight(i, j);
      const double base_lat = qt.game.latency_of(base, i);
      const double trip_lat = tg.game.latency_of(trip, tg.copy(i, 2));
      EXPECT_NEAR(trip_lat, base_lat + 2.0 * wi, 1e-9)
          << "cut=" << cut << " i=" << i;
    }
  }
  // All-three-on-S_out latency = 3W_i (probe by moving i2 and i3 out).
  {
    ThresholdState s = tripled_initial_state(tg, 0);  // i3 out already
    const int i = 0;
    double wi = 0.0;
    for (int j = 0; j < 5; ++j) wi += inst.weight(i, j);
    s.toggle(tg.game, tg.copy(i, 1));  // i2 joins S_out: load 3 on r_i
    EXPECT_NEAR(tg.game.latency_of(s, tg.copy(i, 0)), 3.0 * wi, 1e-9);
    // i2 back on S_in with both others out: at most 2W_i.
    s.toggle(tg.game, tg.copy(i, 1));
    EXPECT_LE(tg.game.latency_of(s, tg.copy(i, 1)), 2.0 * wi + 1e-9);
  }
}

TEST(ThresholdDynamics, ForcedRunsReportUniqueness) {
  // Path 0-1 (weight 4), 1-2 (weight 1), start {0 in, 1 out, 2 out}:
  // only node 2 improves (join cost 0 < T_2 = 0.5), and after it joins the
  // state is stable — so the run reports unique improvers throughout.
  MaxCutInstance inst({{0.0, 4.0, 0.0},
                       {4.0, 0.0, 1.0},
                       {0.0, 1.0, 0.0}});
  const auto qt = make_quadratic_threshold(inst);
  ThresholdState s = state_from_cut(qt.game, 0b001);
  const auto run = run_threshold_best_response(qt.game, s, 100);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(run.unique_improver_throughout);
  EXPECT_EQ(run.steps, 1);
  EXPECT_TRUE(qt.game.is_stable(s));
  EXPECT_TRUE(s.plays_in(2));
}

TEST(ThresholdDynamics, AllOutStartHasEveryIncidentNodeImproving) {
  // Complement of the uniqueness test: from the all-out cut, every node
  // with positive incident weight wants in (cost 0 < T_i = W_i/2 > 0).
  MaxCutInstance inst({{0.0, 5.0}, {5.0, 0.0}});
  const auto qt = make_quadratic_threshold(inst);
  const ThresholdState s = state_from_cut(qt.game, 0);
  EXPECT_EQ(qt.game.improving_players(s).size(), 2u);
}

TEST(ThresholdDynamics, StateFromCutRoundTripsBits) {
  Rng rng(4);
  const auto inst = MaxCutInstance::random(6, 0.5, 4, rng);
  const auto qt = make_quadratic_threshold(inst);
  for (std::uint32_t cut = 0; cut < 64; ++cut) {
    const ThresholdState s = state_from_cut(qt.game, cut);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(s.plays_in(i), static_cast<bool>((cut >> i) & 1u));
    }
  }
}

TEST(ThresholdDynamics, ZeroWeightNodesAreIndifferent) {
  // A node with no incident weight has W_i = 0: both strategies cost 0, so
  // it never improves and never blocks stability.
  MaxCutInstance inst({{0.0, 3.0, 0.0},
                       {3.0, 0.0, 0.0},
                       {0.0, 0.0, 0.0}});
  const auto qt = make_quadratic_threshold(inst);
  ThresholdState s = state_from_cut(qt.game, 0);
  const auto run = run_threshold_best_response(qt.game, s, 100);
  EXPECT_TRUE(run.converged);
  EXPECT_LE(run.steps, 2);
}

}  // namespace
}  // namespace cid
