#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace cid {
namespace {

TEST(FormatDouble, FixedAndScientificRegimes) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(0.0, 3), "0.000");
  EXPECT_EQ(format_double(1.23e9, 2), "1.23e+09");
  EXPECT_EQ(format_double(5e-7, 1), "5.0e-07");
  EXPECT_EQ(format_double(std::nan(""), 2), "nan");
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{12});
  t.row().cell("b").cell(3.5, 1);
  const std::string s = t.to_string("demo");
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsMisuse) {
  Table t({"a", "b"});
  EXPECT_THROW(t.cell("no row yet"), invariant_violation);
  t.row().cell("1").cell("2");
  EXPECT_THROW(t.cell("overflow"), invariant_violation);
  t.row().cell("only one");
  EXPECT_THROW(t.row(), invariant_violation);  // previous row incomplete
}

TEST(Table, CsvEscaping) {
  Table t({"x", "note"});
  t.row().cell(std::int64_t{1}).cell("plain");
  t.row().cell(std::int64_t{2}).cell("has,comma");
  t.row().cell(std::int64_t{3}).cell("has\"quote");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("x,note\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, PlusMinusCell) {
  Table t({"v"});
  t.row().cell_pm(1.23456, 0.01, 2);
  EXPECT_NE(t.to_string().find("1.23 ± 0.01"), std::string::npos);
}

}  // namespace
}  // namespace cid
