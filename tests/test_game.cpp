#include <gtest/gtest.h>

#include "game/builders.hpp"
#include "game/congestion_game.hpp"
#include "game/state.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

CongestionGame braess_game(std::int64_t n) {
  const auto net = make_braess_network();
  // Edges in creation order: s->u, s->v, u->t, v->t, u->v.
  std::vector<LatencyPtr> fns{make_linear(1.0), make_constant(10.0),
                              make_constant(10.0), make_linear(1.0),
                              make_constant(1.0)};
  return make_network_game(net, std::move(fns), n);
}

TEST(CongestionGame, ValidatesInputs) {
  EXPECT_THROW(CongestionGame({}, {{0}}, 1), invariant_violation);
  EXPECT_THROW(CongestionGame({make_linear(1.0)}, {}, 1),
               invariant_violation);
  EXPECT_THROW(CongestionGame({make_linear(1.0)}, {{0}}, 0),
               invariant_violation);
  EXPECT_THROW(CongestionGame({make_linear(1.0)}, {{}}, 1),
               invariant_violation);
  EXPECT_THROW(CongestionGame({make_linear(1.0)}, {{1}}, 1),
               invariant_violation);
  EXPECT_THROW(CongestionGame({make_linear(1.0)}, {{0, 0}}, 1),
               invariant_violation);
  EXPECT_THROW(CongestionGame({make_linear(1.0), make_linear(1.0)},
                              {{1, 0}}, 1),
               invariant_violation);  // unsorted
}

TEST(CongestionGame, SingletonDetection) {
  const auto single = make_uniform_links_game(3, make_linear(1.0), 5);
  EXPECT_TRUE(single.is_singleton());
  EXPECT_EQ(single.num_strategies(), 3);
  const auto braess = braess_game(4);
  EXPECT_FALSE(braess.is_singleton());
  EXPECT_EQ(braess.num_strategies(), 3);
  EXPECT_EQ(braess.num_resources(), 5);
}

TEST(CongestionGame, ElasticityFlooredAtOne) {
  // All-constant latencies have elasticity 0; the protocol parameter floors
  // at 1 so 1/d never amplifies.
  const auto game = make_uniform_links_game(2, make_constant(5.0), 4);
  EXPECT_DOUBLE_EQ(game.elasticity(), 1.0);
  const auto cubic = make_uniform_links_game(2, make_monomial(1.0, 3.0), 4);
  EXPECT_DOUBLE_EQ(cubic.elasticity(), 3.0);
}

TEST(CongestionGame, NuIsMaxStrategySlopeSum) {
  // Braess: ν_P sums edge slopes; the s->u (x) + u->v (const) + v->t (x)
  // bridge path has ν = 1 + 0 + 1 = 2.
  const auto game = braess_game(4);
  double nu_max = 0.0;
  for (StrategyId p = 0; p < game.num_strategies(); ++p) {
    nu_max = std::max(nu_max, game.nu_strategy(p));
  }
  EXPECT_DOUBLE_EQ(game.nu(), nu_max);
  EXPECT_DOUBLE_EQ(game.nu(), 2.0);
}

TEST(CongestionGame, ProtocolParameterBounds) {
  const auto game = make_uniform_links_game(4, make_linear(2.0), 10);
  EXPECT_DOUBLE_EQ(game.min_nonempty_latency(), 2.0);
  EXPECT_DOUBLE_EQ(game.beta_slope(), 2.0);      // linear slope a
  EXPECT_DOUBLE_EQ(game.max_latency_upper(), 20.0);  // a*n
  EXPECT_DOUBLE_EQ(game.nu(), 2.0);
}

TEST(CongestionGame, LatencyQueries) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  EXPECT_DOUBLE_EQ(game.resource_latency(x, 0), 7.0);
  EXPECT_DOUBLE_EQ(game.strategy_latency(x, 0), 7.0);
  EXPECT_DOUBLE_EQ(game.plus_latency(x, 1), 4.0);
  // Ex-post: mover from 0 to 1 sees load 4 on link 1.
  EXPECT_DOUBLE_EQ(game.expost_latency(x, 0, 1), 4.0);
  EXPECT_DOUBLE_EQ(game.expost_latency(x, 1, 1), 3.0);  // self-move: as-is
}

TEST(CongestionGame, ExpostSharedResourcesUnchanged) {
  // Two overlapping 2-resource strategies sharing resource 1.
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0),
                              make_linear(1.0)};
  CongestionGame game(std::move(fns), {{0, 1}, {1, 2}}, 6);
  const State x(game, {4, 2});
  // loads: r0=4, r1=6, r2=2. Mover 0->1: r1 shared (stays 6), r2 becomes 3.
  EXPECT_DOUBLE_EQ(game.expost_latency(x, 0, 1), 6.0 + 3.0);
  // Mover 1->0: r0 becomes 5, r1 stays 6.
  EXPECT_DOUBLE_EQ(game.expost_latency(x, 1, 0), 5.0 + 6.0);
}

TEST(CongestionGame, AverageLatencies) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  // L_av = (7*7 + 3*3)/10 = 5.8; L+_av = (7*8 + 3*4)/10 = 6.8.
  EXPECT_DOUBLE_EQ(game.average_latency(x), 5.8);
  EXPECT_DOUBLE_EQ(game.plus_average_latency(x), 6.8);
}

TEST(CongestionGame, PotentialClosedFormLinear) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  // Φ = Σ_{i<=7} i + Σ_{i<=3} i = 28 + 6 = 34.
  EXPECT_DOUBLE_EQ(game.potential(x), 34.0);
}

TEST(CongestionGame, DescribeMentionsShape) {
  const auto game = braess_game(4);
  const std::string d = game.describe();
  EXPECT_NE(d.find("n=4"), std::string::npos);
  EXPECT_NE(d.find("|P|=3"), std::string::npos);
}

TEST(NetworkGame, BraessPathsAreSorted) {
  const auto game = braess_game(4);
  for (StrategyId p = 0; p < game.num_strategies(); ++p) {
    const Strategy& s = game.strategy(p);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
}

TEST(NetworkGame, RequiresMatchingLatencyCount) {
  const auto net = make_parallel_links(3);
  EXPECT_THROW(
      make_network_game(net, {make_linear(1.0)}, 2),
      invariant_violation);
}

}  // namespace
}  // namespace cid
