#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/trace.hpp"
#include "dynamics/engine.hpp"
#include "game/builders.hpp"
#include "game/potential.hpp"
#include "obs/metrics.hpp"
#include "protocols/imitation.hpp"
#include "util/assert.hpp"

namespace cid {
namespace {

TEST(Experiment, TrialsAreReproducible) {
  const TrialFn trial = [](Rng& rng) { return rng.uniform(); };
  const TrialSet a = run_trials(10, 42, trial);
  const TrialSet b = run_trials(10, 42, trial);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.summary.count, 10u);
  const TrialSet c = run_trials(10, 43, trial);
  EXPECT_NE(a.values, c.values);
}

TEST(Experiment, TrialsAreIndependentStreams) {
  // Identical trial bodies must see different randomness per trial.
  const TrialSet set =
      run_trials(20, 7, [](Rng& rng) { return rng.uniform(); });
  for (std::size_t i = 1; i < set.values.size(); ++i) {
    EXPECT_NE(set.values[i], set.values[0]);
  }
}

TEST(Experiment, EventFrequency) {
  EXPECT_DOUBLE_EQ(event_frequency(50, 1, [](Rng&) { return 1.0; }), 1.0);
  EXPECT_DOUBLE_EQ(event_frequency(50, 1, [](Rng&) { return 0.0; }), 0.0);
  const double freq = event_frequency(
      4000, 1, [](Rng& rng) { return rng.bernoulli(0.3) ? 1.0 : 0.0; });
  EXPECT_NEAR(freq, 0.3, 0.03);
}

TEST(Experiment, Validation) {
  EXPECT_THROW(run_trials(0, 1, [](Rng&) { return 0.0; }),
               invariant_violation);
  EXPECT_THROW(run_trials(1, 1, TrialFn{}), invariant_violation);
}

TEST(PotentialTracker, ResyncMatchesFullRebuildAndCountsIt) {
  const auto game = make_uniform_links_game(4, make_monomial(1.0, 2.0), 160);
  Rng rng(13);
  State x = State::uniform_random(game, rng);
  PotentialTracker tracker(game, x);

  auto& registry = obs::global_metrics();
  const auto resyncs = registry.counter("analysis.potential_resyncs");
  // Construction already resynced once (it IS a full recomputation).
  const std::int64_t before = registry.value(resyncs);

  // Drift the tracker through incremental apply() updates, then resync:
  // the result must be exactly the from-scratch potential — resync is a
  // full rebuild, not a correction of the incremental estimate.
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 30;
  const RoundObserver track = [&](const CongestionGame& g, const State& s,
                                  std::span<const Migration> moves,
                                  std::int64_t, bool final) {
    if (!final) tracker.apply(g, s, moves);
  };
  run_dynamics(game, x, protocol, rng, opts, nullptr, track);
  EXPECT_NEAR(tracker.value(), game.potential(x),
              1e-7 * (1.0 + game.potential(x)));

  tracker.resync(game, x);
  EXPECT_EQ(tracker.value(), game.potential(x));
  if (obs::kMetricsCompiled) {
    EXPECT_EQ(registry.value(resyncs) - before, 1);
    EXPECT_GE(before, 1);
  } else {
    EXPECT_EQ(registry.value(resyncs), 0);
  }
}

TEST(TraceRecorder, PotentialMatchesExactRecomputation) {
  const auto game = make_uniform_links_game(4, make_monomial(1.0, 2.0), 200);
  Rng rng(3);
  State x(game, {120, 40, 30, 10});
  TraceRecorder recorder(game, x);
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 25;
  run_dynamics(game, x, protocol, rng, opts, nullptr, recorder.observer());
  EXPECT_NEAR(recorder.current_potential(), game.potential(x),
              1e-7 * (1.0 + game.potential(x)));
  // Records: rounds 0..24 at interval 1, plus final flush.
  EXPECT_EQ(recorder.records().size(), 26u);
  EXPECT_EQ(recorder.records().front().round, 0);
  EXPECT_EQ(recorder.records().back().round, 25);
}

TEST(TraceRecorder, SamplingIntervalDownsamples) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  Rng rng(4);
  State x(game, {90, 10});
  TraceRecorder recorder(game, x, 10);
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 35;
  run_dynamics(game, x, protocol, rng, opts, nullptr, recorder.observer());
  // Rounds 0, 10, 20, 30 + final flush at 35.
  EXPECT_EQ(recorder.records().size(), 5u);
  // Potential tracker must remain exact despite downsampling.
  EXPECT_NEAR(recorder.current_potential(), game.potential(x), 1e-9);
}

TEST(TraceRecorder, TableHasExpectedShape) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 50);
  Rng rng(5);
  State x(game, {40, 10});
  TraceRecorder recorder(game, x);
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 3;
  run_dynamics(game, x, protocol, rng, opts, nullptr, recorder.observer());
  const Table t = recorder.to_table();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_NE(t.to_string().find("potential"), std::string::npos);
}

}  // namespace
}  // namespace cid
