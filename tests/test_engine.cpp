// Engine tests: mass conservation, pre-round-state semantics, stop/observer
// plumbing, and the statistical equivalence of the per-player and aggregate
// engines (same marginal law by construction; here verified empirically).
#include <gtest/gtest.h>

#include <cmath>

#include "dynamics/engine.hpp"
#include "game/builders.hpp"
#include "protocols/imitation.hpp"
#include "util/assert.hpp"

namespace cid {
namespace {

TEST(Engine, RoundConservesMass) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 1000);
  Rng rng(1);
  const ImitationProtocol protocol;
  for (EngineMode mode : {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    State x(game, {700, 100, 100, 100});
    for (int round = 0; round < 10; ++round) {
      step_round(game, x, protocol, rng, mode);
      x.check_consistent(game);
    }
  }
}

TEST(Engine, MoveCountsNeverExceedOrigin) {
  const auto game = make_uniform_links_game(3, make_monomial(2.0, 2.0), 300);
  Rng rng(2);
  ImitationParams params;
  params.lambda = 1.0;  // aggressive λ stresses feasibility
  const ImitationProtocol protocol(params);
  State x(game, {250, 40, 10});
  for (int round = 0; round < 20; ++round) {
    const RoundResult rr = draw_round(game, x, protocol, rng,
                                      EngineMode::kAggregate);
    std::vector<std::int64_t> outflow(3, 0);
    for (const auto& mv : rr.moves) {
      outflow[static_cast<std::size_t>(mv.from)] += mv.count;
    }
    for (StrategyId p = 0; p < 3; ++p) {
      EXPECT_LE(outflow[static_cast<std::size_t>(p)], x.count(p));
    }
    x.apply(game, rr.moves);
  }
}

TEST(Engine, EnginesAgreeOnExpectedFlow) {
  // One round from a fixed state: E[movers 0→1] must agree across engines
  // (they implement the same law). n·p ≈ 700·(3/9.99…)·μ; compare means.
  const auto game = make_uniform_links_game(2, make_linear(1.0), 1000);
  const ImitationProtocol protocol;
  const State x0(game, {700, 300});
  const double p01 = protocol.move_probability(game, x0, 0, 1);
  const double expect = 700.0 * p01;
  const int kTrials = 3000;
  for (EngineMode mode : {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    Rng rng(42);
    double total = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const RoundResult rr = draw_round(game, x0, protocol, rng, mode);
      for (const auto& mv : rr.moves) {
        ASSERT_EQ(mv.from, 0);
        ASSERT_EQ(mv.to, 1);
        total += static_cast<double>(mv.count);
      }
    }
    const double mean = total / kTrials;
    // s.d. of one round ≈ sqrt(700·p(1−p)) ≈ 8; 6σ/sqrt(3000) tolerance.
    EXPECT_NEAR(mean, expect, 6.0 * std::sqrt(700.0 * p01) /
                                  std::sqrt(static_cast<double>(kTrials)))
        << "mode=" << static_cast<int>(mode);
  }
}

TEST(Engine, EnginesAgreeOnVariance) {
  // Second moments must agree too: movers 0→1 is Binomial(700, p01) in both
  // engines (σ² = np(1−p)).
  const auto game = make_uniform_links_game(2, make_linear(1.0), 1000);
  const ImitationProtocol protocol;
  const State x0(game, {700, 300});
  const double p01 = protocol.move_probability(game, x0, 0, 1);
  const double true_var = 700.0 * p01 * (1.0 - p01);
  const int kTrials = 4000;
  for (EngineMode mode : {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    Rng rng(43);
    double sum = 0.0, sumsq = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const RoundResult rr = draw_round(game, x0, protocol, rng, mode);
      double movers = 0.0;
      for (const auto& mv : rr.moves) movers += static_cast<double>(mv.count);
      sum += movers;
      sumsq += movers * movers;
    }
    const double mean = sum / kTrials;
    const double var = sumsq / kTrials - mean * mean;
    EXPECT_NEAR(var, true_var, 0.15 * true_var)
        << "mode=" << static_cast<int>(mode);
  }
}

TEST(Engine, ProbabilitiesComputedFromPreRoundState) {
  // Concurrency semantics: all cohorts decide against the same state. With
  // three strategies in a cycle-improving configuration, movers in both
  // directions can cross in one round — verify both directions occur
  // simultaneously at least once over many rounds.
  const auto game = make_uniform_links_game(3, make_linear(1.0), 90);
  ImitationParams params;
  params.lambda = 1.0;
  params.nu_cutoff = false;
  const ImitationProtocol protocol(params);
  Rng rng(7);
  State x(game, {60, 20, 10});
  bool crossing_seen = false;
  for (int round = 0; round < 50 && !crossing_seen; ++round) {
    const RoundResult rr =
        draw_round(game, x, protocol, rng, EngineMode::kAggregate);
    bool from0 = false, from1 = false;
    for (const auto& mv : rr.moves) {
      if (mv.from == 0) from0 = true;
      if (mv.from == 1) from1 = true;
    }
    crossing_seen = from0 && from1;
    x.apply(game, rr.moves);
  }
  EXPECT_TRUE(crossing_seen);
}

TEST(Engine, RunStopsOnPredicate) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  Rng rng(3);
  State x(game, {90, 10});
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 10000;
  const RunResult rr = run_dynamics(
      game, x, protocol, rng, opts,
      [](const CongestionGame&, const State& s, std::int64_t) {
        return std::abs(s.count(0) - s.count(1)) <= 10;
      });
  EXPECT_TRUE(rr.converged);
  EXPECT_LT(rr.rounds, 10000);
  EXPECT_LE(std::abs(x.count(0) - x.count(1)), 10);
}

TEST(Engine, RunHonoursMaxRounds) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  Rng rng(4);
  State x(game, {90, 10});
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 5;
  const RunResult rr = run_dynamics(
      game, x, protocol, rng, opts,
      [](const CongestionGame&, const State&, std::int64_t) {
        return false;
      });
  EXPECT_FALSE(rr.converged);
  EXPECT_EQ(rr.rounds, 5);
}

TEST(Engine, ObserverSeesEveryRoundAndFinalState) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  Rng rng(5);
  State x(game, {90, 10});
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 7;
  std::int64_t calls = 0;
  bool saw_final = false;
  run_dynamics(
      game, x, protocol, rng, opts,
      [](const CongestionGame&, const State&, std::int64_t) {
        return false;
      },
      [&](const CongestionGame&, const State&,
          std::span<const Migration> moves, std::int64_t round, bool final) {
        ++calls;
        if (final && moves.empty() && round == 7) saw_final = true;
      });
  EXPECT_EQ(calls, 8);  // 7 rounds + final flush
  EXPECT_TRUE(saw_final);
}

TEST(Engine, CheckIntervalSkipsPredicateEvaluations) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  Rng rng(6);
  State x(game, {90, 10});
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 100;
  opts.check_interval = 10;
  std::int64_t evaluations = 0;
  run_dynamics(game, x, protocol, rng, opts,
               [&](const CongestionGame&, const State&, std::int64_t) {
                 ++evaluations;
                 return false;
               });
  EXPECT_EQ(evaluations, 11);  // rounds 0,10,...,90 plus the final check
}

TEST(Engine, ValidatesOptions) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  Rng rng(8);
  State x(game, {5, 5});
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.check_interval = 0;
  EXPECT_THROW(run_dynamics(game, x, protocol, rng, opts, nullptr),
               invariant_violation);
}

}  // namespace
}  // namespace cid
