// Direct empirical reproduction of Lemma 2, the paper's core technical
// result: for migration vectors ∆x drawn by the IMITATION PROTOCOL,
//
//     E[ΔΦ(x,∆x)]  ≤  (1/2)·E[Σ_PQ V_PQ(x,∆x)]         (Lemma 2)
//
// i.e. the concurrency error terms eat at most half of the virtual
// potential gain. The paper proves this for λ ≤ 1/512; we verify it both
// there and at the practical λ = 1/4 used by the benches, across game
// families including high-elasticity ones where the error terms are
// largest.
#include <gtest/gtest.h>

#include <tuple>

#include "dynamics/engine.hpp"
#include "game/builders.hpp"
#include "game/potential.hpp"
#include "graph/generators.hpp"
#include "protocols/imitation.hpp"
#include "util/stats.hpp"

namespace cid {
namespace {

struct Lemma2Case {
  const char* name;
  double lambda;
};

class Lemma2 : public ::testing::TestWithParam<Lemma2Case> {
 protected:
  static std::vector<std::pair<CongestionGame, State>> situations() {
    std::vector<std::pair<CongestionGame, State>> out;
    {
      auto g = make_uniform_links_game(4, make_linear(1.0), 400);
      State x(g, {250, 100, 30, 20});
      out.emplace_back(std::move(g), std::move(x));
    }
    {
      auto g = make_uniform_links_game(4, make_monomial(1.0, 4.0), 400);
      State x(g, {250, 100, 30, 20});
      out.emplace_back(std::move(g), std::move(x));
    }
    {
      auto g = make_overshoot_example(10000.0, 1.0, 4.0, 512);
      State x(g, {480, 32});
      out.emplace_back(std::move(g), std::move(x));
    }
    {
      const auto net = make_braess_network();
      std::vector<LatencyPtr> fns{make_linear(0.5), make_constant(40.0),
                                  make_constant(40.0), make_linear(0.5),
                                  make_constant(2.0)};
      auto g = make_network_game(net, std::move(fns), 200);
      State x = State::spread_evenly(g);
      out.emplace_back(std::move(g), std::move(x));
    }
    return out;
  }
};

TEST_P(Lemma2, TruePotentialGainIsAtLeastHalfTheVirtualGain) {
  const auto param = GetParam();
  ImitationParams params;
  params.lambda = param.lambda;
  const ImitationProtocol protocol(params);
  for (const auto& [game, x] : situations()) {
    RunningStat dphi_stat, vpq_stat;
    Rng rng(0x1E44A2);
    for (int trial = 0; trial < 800; ++trial) {
      const RoundResult rr =
          draw_round(game, x, protocol, rng, EngineMode::kAggregate);
      dphi_stat.add(potential_gain(game, x, rr.moves));
      vpq_stat.add(virtual_potential_gain(game, x, rr.moves));
    }
    // V_PQ is a sum of strictly negative per-mover terms.
    EXPECT_LE(vpq_stat.mean(), 0.0) << game.describe();
    // Lemma 2 with a 4-sigma noise allowance on each estimate.
    const double noise = 4.0 * (dphi_stat.sem() + 0.5 * vpq_stat.sem());
    EXPECT_LE(dphi_stat.mean(), 0.5 * vpq_stat.mean() + noise)
        << game.describe() << " at lambda=" << param.lambda;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lambdas, Lemma2,
    ::testing::Values(Lemma2Case{"strict", kStrictLambda},
                      Lemma2Case{"practical", 0.25}),
    [](const ::testing::TestParamInfo<Lemma2Case>& param_info) {
      return param_info.param.name;
    });

TEST(Lemma2Pointwise, ErrorTermsBoundedByHalfVirtualGainOnProtocolDraws) {
  // The proof of Lemma 2 establishes the stronger per-expectation bound
  // E[Σ F_e] <= -(1/2)·E[Σ V_PQ]; check that form too (error terms are
  // non-negative, virtual gains non-positive under the protocol).
  const auto game = make_uniform_links_game(4, make_monomial(1.0, 3.0), 300);
  const State x(game, {200, 60, 25, 15});
  ImitationParams params;
  params.lambda = kStrictLambda;
  const ImitationProtocol protocol(params);
  Rng rng(0x2E44A2);
  RunningStat err_stat, vpq_stat;
  for (int trial = 0; trial < 2000; ++trial) {
    const RoundResult rr =
        draw_round(game, x, protocol, rng, EngineMode::kAggregate);
    err_stat.add(concurrency_error_term(game, x, rr.moves));
    vpq_stat.add(virtual_potential_gain(game, x, rr.moves));
  }
  EXPECT_GE(err_stat.mean(), 0.0);
  EXPECT_LE(err_stat.mean(),
            -0.5 * vpq_stat.mean() + 4.0 * (err_stat.sem() + vpq_stat.sem()));
}

}  // namespace
}  // namespace cid
