// Tests for the parallel scenario-sweep runtime. The load-bearing contract
// is thread-count invariance: a sweep's per-trial results must be bitwise
// identical whether it runs on 1 thread or 8, because all Rng streams are
// derived serially (Rng::split) before any worker starts. Everything else
// — registry, grid parsing, writers, the retrofitted analysis harness —
// rides on that.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "sweep/output.hpp"
#include "sweep/pool.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"
#include "util/rng.hpp"

namespace cid::sweep {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 4.0}};
  grid.protocols = parse_protocol_list("imitation,combined");
  grid.ns = {200, 500};
  grid.trials = 6;
  grid.master_seed = 99;
  grid.dynamics.max_rounds = 2000;
  return grid;
}

/// SweepOptions with only the thread count set (the designated-init
/// shorthand would warn about the resumable-sweep fields added later).
SweepOptions with_threads(int threads) {
  SweepOptions options;
  options.threads = threads;
  return options;
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    const TrialRow& ta = a.trials[i];
    const TrialRow& tb = b.trials[i];
    EXPECT_EQ(ta.key.cell, tb.key.cell);
    EXPECT_EQ(ta.key.protocol, tb.key.protocol);
    EXPECT_EQ(ta.key.n, tb.key.n);
    EXPECT_EQ(ta.trial, tb.trial);
    // operator== compares every field exactly — bitwise for the doubles.
    EXPECT_EQ(ta.outcome, tb.outcome) << "trial " << i << " diverged";
  }
}

TEST(SweepDeterminism, ThreadCountInvariant) {
  const SweepGrid grid = small_grid();
  const SweepResult serial = run_sweep(grid, with_threads(1));
  const SweepResult four = run_sweep(grid, with_threads(4));
  const SweepResult eight = run_sweep(grid, with_threads(8));
  expect_identical(serial, four);
  expect_identical(serial, eight);
}

TEST(SweepDeterminism, RepeatedRunsIdentical) {
  const SweepGrid grid = small_grid();
  expect_identical(run_sweep(grid, with_threads(3)),
                   run_sweep(grid, with_threads(3)));
}

TEST(SweepDeterminism, AsymmetricAndThresholdScenarios) {
  for (const char* name : {"asymmetric", "multicommodity", "threshold-lb"}) {
    SweepGrid grid;
    grid.scenario.name = name;
    grid.protocols = parse_protocol_list("imitation");
    grid.ns = {60};
    grid.trials = 4;
    grid.master_seed = 7;
    grid.dynamics.max_rounds = 5000;
    grid.dynamics.stop = StopRule::kImitationStable;
    expect_identical(run_sweep(grid, with_threads(1)),
                     run_sweep(grid, with_threads(4)));
  }
}

TEST(SweepDeterminism, WrittenFilesIdenticalAcrossThreadCounts) {
  const SweepGrid grid = small_grid();
  const SweepResult serial = run_sweep(grid, with_threads(1));
  const SweepResult parallel = run_sweep(grid, with_threads(8));
  auto slurp_trials = [](const SweepResult& result, const std::string& path) {
    write_trials_jsonl(path, result);
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::remove(path.c_str());
    return ss.str();
  };
  const std::string dir = ::testing::TempDir();
  EXPECT_EQ(slurp_trials(serial, dir + "/sweep_t1.jsonl"),
            slurp_trials(parallel, dir + "/sweep_t8.jsonl"));
}

TEST(SweepRunner, CellAggregatesMatchTrials) {
  const SweepGrid grid = small_grid();
  const SweepResult result = run_sweep(grid, with_threads(2));
  ASSERT_EQ(result.cells.size(), grid.ns.size() * grid.protocols.size());
  ASSERT_EQ(result.trials.size(),
            result.cells.size() * static_cast<std::size_t>(grid.trials));
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const CellRow& cell = result.cells[c];
    double sum = 0.0;
    int converged = 0;
    for (int t = 0; t < grid.trials; ++t) {
      const TrialRow& trial =
          result.trials[c * static_cast<std::size_t>(grid.trials) +
                        static_cast<std::size_t>(t)];
      EXPECT_EQ(trial.key.cell, cell.key.cell);
      sum += trial.outcome.rounds;
      converged += trial.outcome.converged ? 1 : 0;
    }
    EXPECT_DOUBLE_EQ(cell.rounds.mean,
                     sum / static_cast<double>(grid.trials));
    EXPECT_DOUBLE_EQ(cell.fraction_converged,
                     static_cast<double>(converged) /
                         static_cast<double>(grid.trials));
  }
}

TEST(SweepPool, MapTrialsMatchesHistoricalSerialHarness) {
  // The analysis harness has always run: master.split(t) serially, one
  // value per child. map_trials must reproduce that exactly — for every
  // thread count.
  const auto fn = [](Rng& rng) { return rng.uniform() + rng.uniform(); };
  Rng master(0xABCDE);
  std::vector<double> expected;
  for (int t = 0; t < 17; ++t) {
    Rng child = master.split(static_cast<std::uint64_t>(t));
    expected.push_back(fn(child));
  }
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(map_trials(17, 0xABCDE, fn, threads), expected)
        << "threads=" << threads;
  }
}

TEST(SweepPool, RunTrialsThreadInvariant) {
  const auto fn = [](Rng& rng) {
    double acc = 0.0;
    for (int i = 0; i < 100; ++i) acc += rng.uniform();
    return acc;
  };
  const TrialSet serial = run_trials(23, 42, fn, 1);
  const TrialSet parallel = run_trials(23, 42, fn, 8);
  EXPECT_EQ(serial.values, parallel.values);
  EXPECT_DOUBLE_EQ(serial.summary.mean, parallel.summary.mean);
  EXPECT_DOUBLE_EQ(serial.sem, parallel.sem);
}

TEST(SweepPool, ParallelForCoversEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(1000, 8, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SweepPool, ParallelForPropagatesExceptions) {
  EXPECT_THROW(parallel_for(64, 4,
                            [](std::int64_t i) {
                              if (i == 17) {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
}

TEST(SweepPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_GE(resolve_threads(0), 1);
}

TEST(SweepGridParsing, LogDecades) {
  EXPECT_EQ(parse_grid_axis("n=1000:100000:log"),
            (std::vector<std::int64_t>{1000, 10000, 100000}));
  // A non-decade endpoint is still included.
  EXPECT_EQ(parse_grid_axis("100:5000:log"),
            (std::vector<std::int64_t>{100, 1000, 5000}));
}

TEST(SweepGridParsing, LogWithPointCountHitsEndpoints) {
  const auto values = parse_grid_axis("n=100:100000:log:4");
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values.front(), 100);
  EXPECT_EQ(values.back(), 100000);
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_GT(values[i], values[i - 1]);
  }
}

TEST(SweepGridParsing, LinearAndList) {
  EXPECT_EQ(parse_grid_axis("n=100:500:lin:5"),
            (std::vector<std::int64_t>{100, 200, 300, 400, 500}));
  EXPECT_EQ(parse_grid_axis("n=100,1000,5000"),
            (std::vector<std::int64_t>{100, 1000, 5000}));
  // Non-adjacent duplicates are dropped too (first occurrence wins): a
  // duplicated n would mint two cells with the same key.
  EXPECT_EQ(parse_grid_axis("n=1000,100,1000"),
            (std::vector<std::int64_t>{1000, 100}));
}

TEST(SweepGridParsing, Rejections) {
  EXPECT_THROW(parse_grid_axis(""), std::runtime_error);
  EXPECT_THROW(parse_grid_axis("n=10:5:log"), std::runtime_error);
  EXPECT_THROW(parse_grid_axis("n=10:100:cubic"), std::runtime_error);
  EXPECT_THROW(parse_grid_axis("n=0:10:lin"), std::runtime_error);
  EXPECT_THROW(parse_grid_axis("n=1:10:log:1"), std::runtime_error);
}

TEST(SweepProtocols, ParsingAndConstruction) {
  const auto specs = parse_protocol_list("imitation,exploration,combined:0.3");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "imitation");
  EXPECT_EQ(specs[1].name, "exploration");
  EXPECT_EQ(specs[2].name, "combined");
  EXPECT_DOUBLE_EQ(specs[2].p_explore, 0.3);
  for (const ProtocolSpec& spec : specs) {
    EXPECT_FALSE(build_protocol(spec)->name().empty());
  }
  EXPECT_THROW(parse_protocol_list("imitation,,combined"),
               std::runtime_error);
  EXPECT_THROW(parse_protocol_spec("mutation"), std::runtime_error);
  EXPECT_THROW(parse_protocol_spec("imitation:0.5"), std::runtime_error);
  EXPECT_THROW(parse_protocol_spec("combined:1.5"), std::runtime_error);
}

TEST(SweepScenarios, RegistryIsComplete) {
  for (const char* name :
       {"singleton-uniform", "load-balancing", "network-routing",
        "asymmetric", "multicommodity", "threshold-lb"}) {
    const Scenario* scenario = find_scenario(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_EQ(scenario->name, name);
    ScenarioSpec spec;
    spec.name = name;
    const auto instance = make_scenario(spec, 64);
    EXPECT_FALSE(instance->describe().empty());
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  ScenarioSpec unknown;
  unknown.name = "no-such-scenario";
  EXPECT_THROW(make_scenario(unknown, 100), std::runtime_error);
}

TEST(SweepScenarios, AsymmetricRejectsNonImitation) {
  ScenarioSpec spec;
  spec.name = "multicommodity";
  const auto instance = make_scenario(spec, 100);
  ProtocolSpec exploration;
  exploration.name = "exploration";
  Rng rng(1);
  EXPECT_THROW(instance->run_trial(exploration, DynamicsConfig{}, rng),
               std::runtime_error);
}

TEST(SweepOutput, WritersProduceExpectedShape) {
  const SweepGrid grid = small_grid();
  const SweepResult result = run_sweep(grid, with_threads(2));
  const std::string prefix = ::testing::TempDir() + "/cid_sweep_out";
  const auto paths = write_sweep_outputs(prefix, result);
  ASSERT_EQ(paths.size(), 4u);
  auto count_lines = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    return lines;
  };
  // CSV: header + one line per row. JSONL: one object per row.
  EXPECT_EQ(count_lines(paths[0].path), result.trials.size() + 1);
  EXPECT_EQ(count_lines(paths[1].path), result.cells.size() + 1);
  EXPECT_EQ(count_lines(paths[2].path), result.trials.size());
  EXPECT_EQ(count_lines(paths[3].path), result.cells.size());
  for (const auto& file : paths) {
    // The reported byte count is the real file size (the observability
    // summary in cid_sweep depends on it).
    EXPECT_EQ(file.bytes, std::filesystem::file_size(file.path));
    std::remove(file.path.c_str());
  }
}

}  // namespace
}  // namespace cid::sweep
