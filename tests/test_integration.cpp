// End-to-end integration tests: whole-paper behaviours on real games.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiment.hpp"
#include "dynamics/engine.hpp"
#include "dynamics/equilibrium.hpp"
#include "game/builders.hpp"
#include "game/potential.hpp"
#include "game/singleton.hpp"
#include "graph/generators.hpp"
#include "protocols/combined.hpp"
#include "protocols/exploration.hpp"
#include "protocols/imitation.hpp"

namespace cid {
namespace {

StopPredicate stable_stop() {
  return [](const CongestionGame& g, const State& s, std::int64_t) {
    return is_imitation_stable(g, s, g.nu());
  };
}

TEST(Integration, ImitationReachesImitationStableOnSingleton) {
  const auto game = make_uniform_links_game(5, make_linear(1.0), 200);
  Rng rng(1);
  State x = State::all_on(game, 0);
  // Seed the other links with a few players so imitation can spread.
  x.apply(game, std::vector<Migration>{{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
                                       {0, 4, 1}});
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 20000;
  const RunResult rr = run_dynamics(game, x, protocol, rng, opts,
                                    stable_stop());
  EXPECT_TRUE(rr.converged);
  EXPECT_TRUE(is_imitation_stable(game, x, game.nu()));
  // With ν=1 and identical linear links, stable means near-balanced.
  for (StrategyId p = 0; p < 5; ++p) {
    EXPECT_NEAR(static_cast<double>(x.count(p)), 40.0, 2.0);
  }
}

TEST(Integration, ImitationReachesApproxEquilibriumOnBraess) {
  const auto net = make_braess_network();
  std::vector<LatencyPtr> fns{make_linear(0.1), make_constant(12.0),
                              make_constant(12.0), make_linear(0.1),
                              make_constant(1.0)};
  const auto game = make_network_game(net, std::move(fns), 100);
  Rng rng(2);
  State x = State::spread_evenly(game);
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 50000;
  const double eps = 0.1, delta = 0.1;
  const RunResult rr = run_dynamics(
      game, x, protocol, rng, opts,
      [&](const CongestionGame& g, const State& s, std::int64_t) {
        return is_delta_eps_equilibrium(g, s, delta, eps);
      });
  EXPECT_TRUE(rr.converged);
}

TEST(Integration, PotentialIsSupermartingaleEmpirically) {
  // Corollary 3: E[ΔΦ] <= 0. Average per-round ΔΦ over many trials from a
  // fixed unbalanced state must be <= 0 within noise, and the average over
  // a long run must be strictly negative.
  const auto game = make_uniform_links_game(4, make_monomial(1.0, 2.0), 400);
  const ImitationProtocol protocol;
  const TrialSet set = run_trials(60, 99, [&](Rng& rng) {
    State x(game, {250, 100, 30, 20});
    double delta_sum = 0.0;
    for (int round = 0; round < 30; ++round) {
      const RoundResult rr =
          draw_round(game, x, protocol, rng, EngineMode::kAggregate);
      delta_sum += potential_gain(game, x, rr.moves);
      x.apply(game, rr.moves);
    }
    return delta_sum;
  });
  EXPECT_LT(set.summary.mean, 0.0);
  EXPECT_LT(set.summary.mean + 3.0 * set.sem, 0.0)
      << "potential decrease should be significant";
}

TEST(Integration, ExplorationConvergesToNashDespiteEmptyStart) {
  std::vector<LatencyPtr> fns{make_linear(2.0), make_linear(2.0),
                              make_linear(1.0)};
  const auto game = make_singleton_game(std::move(fns), 50);
  Rng rng(3);
  State x = State::all_on(game, 0);  // cheap link unused
  const ExplorationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 2000000;
  opts.check_interval = 16;
  const RunResult rr = run_dynamics(
      game, x, protocol, rng, opts,
      [](const CongestionGame& g, const State& s, std::int64_t) {
        return is_nash(g, s);
      });
  EXPECT_TRUE(rr.converged) << "exploration should find the unused link";
  EXPECT_GT(x.count(2), 0);
}

TEST(Integration, CombinedProtocolConvergesToNash) {
  std::vector<LatencyPtr> fns{make_linear(2.0), make_linear(2.0),
                              make_linear(1.0)};
  const auto game = make_singleton_game(std::move(fns), 50);
  Rng rng(4);
  State x = State::all_on(game, 0);
  const CombinedProtocol protocol(ImitationParams{}, ExplorationParams{});
  RunOptions opts;
  opts.max_rounds = 2000000;
  opts.check_interval = 16;
  const RunResult rr = run_dynamics(
      game, x, protocol, rng, opts,
      [](const CongestionGame& g, const State& s, std::int64_t) {
        return is_nash(g, s);
      });
  EXPECT_TRUE(rr.converged);
}

TEST(Integration, ImitationAloneStabilizesWithoutDiscovering) {
  // The §6 motivation: pure imitation can stabilize in a bad state when the
  // good strategy is unused.
  std::vector<LatencyPtr> fns{make_linear(2.0), make_linear(2.0),
                              make_linear(0.01)};
  const auto game = make_singleton_game(std::move(fns), 60);
  Rng rng(5);
  State x(game, {30, 30, 0});
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 5000;
  run_dynamics(game, x, protocol, rng, opts, stable_stop());
  EXPECT_EQ(x.count(2), 0);
  EXPECT_FALSE(is_nash(game, x));
  EXPECT_TRUE(is_imitation_stable(game, x, game.nu()));
}

TEST(Integration, VirtualAgentImitationEscapesTheTrap) {
  // §6: with one virtual agent per strategy, pure imitation becomes
  // innovative and reaches Nash from the unused-best-link start.
  std::vector<LatencyPtr> fns{make_linear(2.0), make_linear(2.0),
                              make_linear(0.5)};
  const auto game = make_singleton_game(std::move(fns), 60);
  Rng rng(8);
  State x(game, {30, 30, 0});
  ImitationParams params;
  params.virtual_agents = 1;
  params.nu_cutoff = false;
  const ImitationProtocol protocol(params);
  RunOptions opts;
  opts.max_rounds = 500000;
  opts.check_interval = 16;
  const RunResult rr = run_dynamics(
      game, x, protocol, rng, opts,
      [](const CongestionGame& g, const State& s, std::int64_t) {
        return is_nash(g, s);
      });
  EXPECT_TRUE(rr.converged);
  EXPECT_GT(x.count(2), 0);
}

TEST(Integration, LargePlayerCountRunsFastWithAggregateEngine) {
  // Sanity check that the aggregate engine handles n = 10^6 quickly enough
  // for the Theorem 7 bench (a handful of rounds here).
  const auto game = make_uniform_links_game(8, make_linear(1.0), 1000000);
  Rng rng(6);
  State x = State::uniform_random(game, rng);
  const ImitationProtocol protocol;
  RunOptions opts;
  opts.max_rounds = 50;
  const RunResult rr = run_dynamics(game, x, protocol, rng, opts, nullptr);
  EXPECT_EQ(rr.rounds, 50);
  x.check_consistent(game);
}

TEST(Integration, NoExtinctionInLargeScaledSingleton) {
  // Theorem 9 regime (scaled latencies, no offsets): no link empties over
  // a substantial horizon at moderate n.
  const int m = 4;
  const std::int64_t n = 2000;
  std::vector<LatencyPtr> fns;
  for (int e = 0; e < m; ++e) {
    fns.push_back(make_scaled(make_linear(1.0 + e), n));
  }
  const auto game = make_singleton_game(std::move(fns), n);
  Rng rng(7);
  State x = State::uniform_random(game, rng);
  ImitationParams params;
  params.nu_cutoff = false;  // Theorem 9 drops ν
  const ImitationProtocol protocol(params);
  RunOptions opts;
  opts.max_rounds = 400;
  bool extinct = false;
  run_dynamics(game, x, protocol, rng, opts,
               [&](const CongestionGame&, const State& s, std::int64_t) {
                 for (StrategyId p = 0; p < 4; ++p) {
                   if (s.count(p) == 0) extinct = true;
                 }
                 return extinct;
               });
  EXPECT_FALSE(extinct);
}

}  // namespace
}  // namespace cid
