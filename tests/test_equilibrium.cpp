#include <gtest/gtest.h>

#include "dynamics/equilibrium.hpp"
#include "game/builders.hpp"
#include "util/assert.hpp"

namespace cid {
namespace {

TEST(ImitationStable, BalancedStateIsStable) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State balanced(game, {5, 5});
  EXPECT_TRUE(is_imitation_stable(game, balanced, 0.0));
  EXPECT_DOUBLE_EQ(imitation_gap(game, balanced), 0.0);
}

TEST(ImitationStable, NuToleratesSmallGaps) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {6, 4});  // gain of a 0→1 move: 6−5 = 1
  EXPECT_TRUE(is_imitation_stable(game, x, 1.0));
  EXPECT_FALSE(is_imitation_stable(game, x, 0.5));
  EXPECT_DOUBLE_EQ(imitation_gap(game, x), 1.0);
  EXPECT_THROW(is_imitation_stable(game, x, -1.0), invariant_violation);
}

TEST(ImitationStable, RestrictedToSupport) {
  // All players on one expensive link; the cheap link is unused, so the
  // state is imitation-stable (nothing to copy) but NOT Nash.
  std::vector<LatencyPtr> fns{make_linear(10.0), make_linear(1.0)};
  const auto game = make_singleton_game(std::move(fns), 10);
  const State x(game, {10, 0});
  EXPECT_TRUE(is_imitation_stable(game, x, 0.0));
  EXPECT_FALSE(is_nash(game, x));
  EXPECT_GT(nash_gap(game, x), 0.0);
}

TEST(Nash, BalancedIsNashForIdenticalLinks) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 8);
  EXPECT_TRUE(is_nash(game, State(game, {2, 2, 2, 2})));
  EXPECT_FALSE(is_nash(game, State(game, {4, 2, 1, 1})));
  EXPECT_DOUBLE_EQ(nash_gap(game, State(game, {2, 2, 2, 2})), 0.0);
}

TEST(Nash, UsesFullStrategySpace) {
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0),
                              make_constant(100.0)};
  const auto game = make_singleton_game(std::move(fns), 10);
  // 5/5/0 on the two fast links: Nash (the constant link costs 100).
  EXPECT_TRUE(is_nash(game, State(game, {5, 5, 0})));
  EXPECT_FALSE(is_nash(game, State(game, {8, 2, 0})));
}

TEST(DeltaEpsNu, PerfectlyBalancedIsEquilibrium) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 100);
  const State x(game, {25, 25, 25, 25});
  const auto report = check_delta_eps_nu(game, x, 0.0, 0.1, 0.0);
  EXPECT_TRUE(report.at_equilibrium);
  EXPECT_DOUBLE_EQ(report.unsatisfied_mass, 0.0);
  EXPECT_DOUBLE_EQ(report.average_latency, 25.0);
  EXPECT_DOUBLE_EQ(report.plus_average_latency, 26.0);
}

TEST(DeltaEpsNu, DetectsExpensivePaths) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  const State x(game, {80, 20});
  // L_av = (80·80+20·20)/100 = 68; L+_av = (80·81+20·21)/100 = 69.
  // With ε=0.05, ν=0: upper = 72.45 → link 0 (80) is expensive (mass .8);
  // lower = 64.6 → link 1 (20) is cheap (mass .2) → unsatisfied = 1.
  const auto report = check_delta_eps_nu(game, x, 0.5, 0.05, 0.0);
  EXPECT_NEAR(report.expensive_mass, 0.8, 1e-12);
  EXPECT_NEAR(report.cheap_mass, 0.2, 1e-12);
  EXPECT_FALSE(report.at_equilibrium);
  // With δ = 1 everything passes by definition.
  EXPECT_TRUE(check_delta_eps_nu(game, x, 1.0, 0.05, 0.0).at_equilibrium);
}

TEST(DeltaEpsNu, NuWidensTheBand) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  const State x(game, {60, 40});
  // L_av = 52, L+_av = 53. ε=0: upper=53+ν, lower=52−ν.
  // ν=15: band [37,68] contains both 60 and 40 → equilibrium at δ=0.
  EXPECT_TRUE(check_delta_eps_nu(game, x, 0.0, 0.0, 15.0).at_equilibrium);
  // ν=5: band [47,58]: link 1 (40) is cheap → mass 0.4 unsatisfied.
  const auto r = check_delta_eps_nu(game, x, 0.3, 0.0, 5.0);
  EXPECT_NEAR(r.cheap_mass, 0.4, 1e-12);
  EXPECT_FALSE(r.at_equilibrium);
}

TEST(DeltaEpsNu, EpsilonScalesWithAverage) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  const State x(game, {55, 45});
  // L_av = 50.5, L+_av = 51.5. ε=0.2 → upper 61.8, lower 40.4: all inside.
  EXPECT_TRUE(check_delta_eps_nu(game, x, 0.0, 0.2, 0.0).at_equilibrium);
  // ε=0.01 → upper 52.0, lower 50.0: 55 expensive, 45 cheap.
  const auto r = check_delta_eps_nu(game, x, 0.0, 0.01, 0.0);
  EXPECT_NEAR(r.unsatisfied_mass, 1.0, 1e-12);
}

TEST(DeltaEpsNu, ValidatesArguments) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 4);
  const State x(game, {2, 2});
  EXPECT_THROW(check_delta_eps_nu(game, x, -0.1, 0.1, 0.0),
               invariant_violation);
  EXPECT_THROW(check_delta_eps_nu(game, x, 0.1, -0.1, 0.0),
               invariant_violation);
  EXPECT_THROW(check_delta_eps_nu(game, x, 0.1, 0.1, -1.0),
               invariant_violation);
}

TEST(DeltaEpsNu, ConvenienceWrapperUsesGameNu) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  const State x(game, {60, 40});
  // game.nu() = 1 for a=1 linear links.
  EXPECT_EQ(is_delta_eps_equilibrium(game, x, 0.0, 0.0),
            check_delta_eps_nu(game, x, 0.0, 0.0, 1.0).at_equilibrium);
}

TEST(Equilibrium, NashImpliesImitationStableAndDeltaEps) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 8);
  const State nash(game, {2, 2, 2, 2});
  ASSERT_TRUE(is_nash(game, nash));
  EXPECT_TRUE(is_imitation_stable(game, nash, 0.0));
  EXPECT_TRUE(check_delta_eps_nu(game, nash, 0.0, 0.5, game.nu())
                  .at_equilibrium);
}

}  // namespace
}  // namespace cid
