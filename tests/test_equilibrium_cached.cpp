// Cached vs reference equilibrium predicates.
//
// Every LatencyContext-backed predicate overload in
// dynamics/equilibrium.hpp (and the asymmetric-context overloads in
// dynamics/asymmetric_engine.hpp) must return EXACTLY what its
// context-free reference computes — same bools, same doubles, same
// ApproxEqReport field for field — including on contexts maintained
// INCREMENTALLY across many applied rounds, on every scenario family's
// game construction, on randomized games, and on states straddling the
// δ/ε decision boundaries.
//
// Family coverage: singleton-uniform, load-balancing, and network-routing
// exercise the symmetric predicates; asymmetric and multicommodity the
// class-wise ones. threshold-lb runs sequential best-response dynamics
// with no latency-cache stop predicate (the registry ignores stop rules
// there), so its latency family — the MaxCut-derived quadratics — is
// covered through an equivalent symmetric quadratic game instead.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dynamics/asymmetric_engine.hpp"
#include "dynamics/engine.hpp"
#include "dynamics/equilibrium.hpp"
#include "game/asymmetric.hpp"
#include "game/builders.hpp"
#include "game/latency_context.hpp"
#include "graph/generators.hpp"
#include "protocols/imitation.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

void expect_predicates_match(const CongestionGame& game, const State& x,
                             const LatencyContext& ctx, double delta,
                             double eps) {
  const double nu = game.nu();
  ASSERT_EQ(is_imitation_stable(ctx, nu), is_imitation_stable(game, x, nu));
  ASSERT_EQ(is_imitation_stable(ctx, 0.0), is_imitation_stable(game, x, 0.0));
  ASSERT_EQ(imitation_gap(ctx), imitation_gap(game, x));
  ASSERT_EQ(is_nash(ctx), is_nash(game, x));
  ASSERT_EQ(nash_gap(ctx), nash_gap(game, x));
  const ApproxEqReport cached = check_delta_eps_nu(ctx, delta, eps, nu);
  const ApproxEqReport reference =
      check_delta_eps_nu(game, x, delta, eps, nu);
  ASSERT_EQ(cached.average_latency, reference.average_latency);
  ASSERT_EQ(cached.plus_average_latency, reference.plus_average_latency);
  ASSERT_EQ(cached.expensive_mass, reference.expensive_mass);
  ASSERT_EQ(cached.cheap_mass, reference.cheap_mass);
  ASSERT_EQ(cached.unsatisfied_mass, reference.unsatisfied_mass);
  ASSERT_EQ(cached.at_equilibrium, reference.at_equilibrium);
  ASSERT_EQ(is_delta_eps_equilibrium(ctx, delta, eps),
            is_delta_eps_equilibrium(game, x, delta, eps));
}

/// Runs real imitation rounds on `game`, comparing cached vs reference
/// predicates on the incrementally refreshed context after every round.
void expect_match_along_trajectory(const CongestionGame& game,
                                   std::uint64_t seed, int rounds) {
  Rng rng(seed);
  State x = State::uniform_random(game, rng);
  const ImitationProtocol protocol;
  RoundWorkspace ws;
  RoundResult rr;
  LatencyContext ctx;
  ctx.reset(game, x);
  ApplyScratch scratch;
  for (int round = 0; round < rounds; ++round) {
    expect_predicates_match(game, x, ctx, 0.1, 0.1);
    draw_round(game, x, protocol, rng, EngineMode::kAggregate, ws, rr);
    x.apply(game, rr.moves, scratch);
    ctx.refresh(scratch.touched);
  }
  expect_predicates_match(game, x, ctx, 0.1, 0.1);
}

// ---- Registry-family game constructions -------------------------------------

TEST(EquilibriumCached, SingletonUniformFamily) {
  // singleton-uniform defaults: m=10, degree=1, spread=0.
  expect_match_along_trajectory(make_monomial_fan_game(10, 1.0, 0.0, 2000),
                                41, 40);
}

TEST(EquilibriumCached, LoadBalancingFamily) {
  // load-balancing defaults: m heterogeneous linear links over [1, 2).
  std::vector<LatencyPtr> fns;
  for (int e = 0; e < 10; ++e) {
    fns.push_back(make_linear(1.0 + static_cast<double>(e) / 10.0));
  }
  expect_match_along_trajectory(make_singleton_game(std::move(fns), 2000),
                                42, 40);
}

TEST(EquilibriumCached, NetworkRoutingFamily) {
  // network-routing defaults: 3x2 layered network, latency_seed=7 mix.
  const auto net = make_layered_network(3, 2);
  Rng latency_rng(7);
  std::vector<LatencyPtr> fns;
  for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
    const double a = 0.5 + latency_rng.uniform();
    fns.push_back(latency_rng.bernoulli(0.5)
                      ? make_linear(a)
                      : make_monomial(0.05 * a, 2.0));
  }
  expect_match_along_trajectory(make_network_game(net, std::move(fns), 1500),
                                43, 40);
}

TEST(EquilibriumCached, ThresholdQuadraticLatencyFamily) {
  // threshold-lb's latency family (quadratics with MaxCut-scale weights)
  // on a symmetric singleton game — the registry's threshold dynamics
  // themselves never evaluate latency-cache predicates.
  std::vector<LatencyPtr> fns;
  Rng wrng(1234);
  for (int e = 0; e < 8; ++e) {
    fns.push_back(make_monomial(
        1.0 + static_cast<double>(wrng.uniform_int(64)), 2.0));
  }
  expect_match_along_trajectory(make_singleton_game(std::move(fns), 400), 44,
                                40);
}

TEST(EquilibriumCached, RandomizedGames) {
  for (const std::uint64_t seed : {100u, 101u, 102u, 103u}) {
    Rng grng(seed);
    const auto net = make_layered_network(
        2 + static_cast<std::int32_t>(grng.uniform_int(3)),
        1 + static_cast<std::int32_t>(grng.uniform_int(3)));
    std::vector<LatencyPtr> fns;
    for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
      const double a = 0.25 + grng.uniform();
      fns.push_back(grng.bernoulli(0.5)
                        ? make_linear(a)
                        : make_monomial(0.1 * a,
                                        grng.bernoulli(0.5) ? 2.0 : 3.0));
    }
    expect_match_along_trajectory(
        make_network_game(net, std::move(fns),
                          500 + static_cast<std::int64_t>(
                                    grng.uniform_int(3000))),
        seed + 7, 25);
  }
}

// ---- δ/ε boundary straddling ------------------------------------------------

TEST(EquilibriumCached, DeltaBoundaryStraddling) {
  // Two identical links, 75/25 split: the cheap link's mass is exactly
  // 0.25 when eps pins the thresholds between the two latencies. Sweep
  // delta through the decision boundary and eps through the classification
  // boundaries; cached and reference must agree at every point, including
  // where at_equilibrium flips.
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  const State x(game, {75, 25});
  LatencyContext ctx;
  ctx.reset(game, x);
  const ApproxEqReport base = check_delta_eps_nu(game, x, 0.5, 0.0, 0.0);
  ASSERT_GT(base.unsatisfied_mass, 0.0);  // the state is genuinely split
  bool flipped = false;
  for (double delta :
       {0.0, base.unsatisfied_mass - 1e-9, base.unsatisfied_mass,
        base.unsatisfied_mass + 1e-9, 1.0}) {
    delta = std::clamp(delta, 0.0, 1.0);
    for (const double eps : {0.0, 0.2, 0.5, 1.0 / 3.0, 2.0}) {
      const ApproxEqReport cached = check_delta_eps_nu(ctx, delta, eps, 0.0);
      const ApproxEqReport reference =
          check_delta_eps_nu(game, x, delta, eps, 0.0);
      ASSERT_EQ(cached.expensive_mass, reference.expensive_mass);
      ASSERT_EQ(cached.cheap_mass, reference.cheap_mass);
      ASSERT_EQ(cached.at_equilibrium, reference.at_equilibrium);
      flipped = flipped || cached.at_equilibrium;
    }
  }
  EXPECT_TRUE(flipped);  // the sweep crossed the boundary both ways
}

TEST(EquilibriumCached, ExactStabilityBoundary) {
  // A state that is imitation-stable at the game's nu but NOT at nu=0
  // (gap strictly between): both predicate forms must agree on both sides
  // of the cutoff, and the cached gap must be the exact double.
  const auto game = make_uniform_links_game(3, make_linear(1.0), 90);
  const State x(game, {31, 30, 29});
  LatencyContext ctx;
  ctx.reset(game, x);
  const double gap = imitation_gap(game, x);
  ASSERT_EQ(imitation_gap(ctx), gap);
  for (const double nu : {0.0, gap * 0.5, gap, gap * 1.5}) {
    ASSERT_EQ(is_imitation_stable(ctx, nu),
              is_imitation_stable(game, x, nu))
        << "nu=" << nu;
  }
}

// ---- Asymmetric families ----------------------------------------------------

AsymmetricGame asymmetric_family_game(std::int64_t n) {
  // The registry's "asymmetric" construction at its defaults (classes=2,
  // links_per_class=2).
  std::vector<LatencyPtr> fns;
  fns.push_back(make_linear(0.5));
  std::vector<PlayerClass> classes(2);
  Resource next = 1;
  for (std::int32_t c = 0; c < 2; ++c) {
    auto& cls = classes[static_cast<std::size_t>(c)];
    cls.strategies.push_back({0});
    for (std::int32_t k = 0; k < 2; ++k) {
      fns.push_back(make_linear(1.0 + 0.5 * static_cast<double>(k)));
      cls.strategies.push_back({next});
      ++next;
    }
    cls.num_players = n / 2 + (c < n % 2 ? 1 : 0);
  }
  return AsymmetricGame(std::move(fns), std::move(classes));
}

AsymmetricGame multicommodity_family_game(std::int64_t n) {
  // The registry's "multicommodity" construction at share=0.6.
  std::vector<LatencyPtr> fns{make_linear(1.5), make_linear(3.0),
                              make_linear(0.75), make_linear(3.0),
                              make_linear(1.5)};
  std::vector<PlayerClass> classes(2);
  classes[0].strategies = {{0}, {1}, {2}};
  classes[0].num_players = (n * 6) / 10;
  classes[1].strategies = {{2}, {3}, {4}};
  classes[1].num_players = n - classes[0].num_players;
  return AsymmetricGame(std::move(fns), std::move(classes));
}

void expect_asymmetric_match_along_trajectory(const AsymmetricGame& game,
                                              std::uint64_t seed,
                                              int rounds) {
  Rng rng(seed);
  AsymmetricState x = AsymmetricState::uniform_random(game, rng);
  const AsymmetricImitationParams params;
  AsymmetricRoundWorkspace ws;
  AsymmetricRoundResult rr;
  for (int round = 0; round < rounds; ++round) {
    draw_asymmetric_round(game, x, params, rng, ws, rr);
    x.apply(game, rr.moves, ws.apply_scratch);
    ws.ctx.refresh(ws.apply_scratch.touched);
    ASSERT_EQ(is_asymmetric_imitation_stable(ws.ctx, game.nu()),
              is_asymmetric_imitation_stable(game, x, game.nu()))
        << "round " << round;
    ASSERT_EQ(is_asymmetric_imitation_stable(ws.ctx, 0.0),
              is_asymmetric_imitation_stable(game, x, 0.0))
        << "round " << round;
    ASSERT_EQ(is_asymmetric_nash(ws.ctx), is_asymmetric_nash(game, x))
        << "round " << round;
  }
}

TEST(EquilibriumCached, AsymmetricFamily) {
  expect_asymmetric_match_along_trajectory(asymmetric_family_game(900), 51,
                                           60);
}

TEST(EquilibriumCached, MulticommodityFamily) {
  expect_asymmetric_match_along_trajectory(multicommodity_family_game(900),
                                           52, 60);
}

}  // namespace
}  // namespace cid
