#include <gtest/gtest.h>

#include "dynamics/equilibrium.hpp"
#include "dynamics/sequential.hpp"
#include "game/builders.hpp"
#include "game/potential.hpp"
#include "graph/generators.hpp"

namespace cid {
namespace {

CongestionGame braess_game(std::int64_t n) {
  const auto net = make_braess_network();
  std::vector<LatencyPtr> fns{make_linear(1.0), make_constant(5.0),
                              make_constant(5.0), make_linear(1.0),
                              make_constant(0.1)};
  return make_network_game(net, std::move(fns), n);
}

TEST(BestResponse, ConvergesToNashOnSingleton) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 16);
  State x = State::all_on(game, 0);
  const auto result = run_best_response(game, x, 1000);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_nash(game, x));
  EXPECT_EQ(x.count(0), 4);  // perfectly balanced
  EXPECT_GT(result.moves, 0);
}

TEST(BestResponse, ConvergesOnBraess) {
  const auto game = braess_game(10);
  State x = State::all_on(game, 0);
  const auto result = run_best_response(game, x, 10000);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_nash(game, x));
}

TEST(BestResponse, PotentialStrictlyDecreasesPerMove) {
  const auto game = braess_game(12);
  State x = State::all_on(game, 1);
  double phi = game.potential(x);
  for (int step = 0; step < 100; ++step) {
    State before = x;
    const auto result = run_best_response(game, x, 1);
    if (result.moves == 0) break;
    const double phi_next = game.potential(x);
    EXPECT_LT(phi_next, phi);
    phi = phi_next;
  }
}

TEST(BestResponse, NashIsFixedPoint) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 16);
  State x(game, {4, 4, 4, 4});
  const auto result = run_best_response(game, x, 100);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(result.steps, 0);
}

TEST(BetterResponse, ConvergesToNash) {
  const auto game = make_uniform_links_game(3, make_linear(1.0), 9);
  Rng rng(1);
  State x = State::all_on(game, 0);
  const auto result = run_better_response(game, x, rng, 100000);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_nash(game, x));
}

TEST(SequentialImitation, ReachesImitationStableNotNecessarilyNash) {
  // Start with the cheap link unused: imitation can never discover it.
  std::vector<LatencyPtr> fns{make_linear(4.0), make_linear(4.0),
                              make_linear(1.0)};
  const auto game = make_singleton_game(std::move(fns), 12);
  Rng rng(2);
  State x(game, {12, 0, 0});
  const auto result = run_sequential_imitation(game, x, rng, 100000);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_imitation_stable(game, x, 0.0));
  EXPECT_EQ(x.count(2), 0);  // still undiscovered
}

TEST(SequentialImitation, BalancesUsedStrategies) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  Rng rng(3);
  State x(game, {9, 1});
  const auto result = run_sequential_imitation(game, x, rng, 100000);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(x.count(0), 5);
  EXPECT_EQ(x.count(1), 5);
  EXPECT_GE(result.moves, 4);
}

TEST(RandomLocalSearch, ConvergesToNashAndExplores) {
  // Unlike imitation, Goldberg-style sampling finds the unused cheap link.
  std::vector<LatencyPtr> fns{make_linear(4.0), make_linear(4.0),
                              make_linear(1.0)};
  const auto game = make_singleton_game(std::move(fns), 12);
  Rng rng(4);
  State x(game, {12, 0, 0});
  const auto result = run_random_local_search(game, x, rng, 1000000);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_nash(game, x));
  EXPECT_GT(x.count(2), 0);
}

TEST(Sequential, AllDynamicsRespectMassConservation) {
  const auto game = braess_game(15);
  Rng rng(5);
  State x1 = State::all_on(game, 0);
  run_best_response(game, x1, 100);
  x1.check_consistent(game);
  State x2 = State::all_on(game, 0);
  run_better_response(game, x2, rng, 100);
  x2.check_consistent(game);
  State x3 = State::all_on(game, 0);
  run_sequential_imitation(game, x3, rng, 100);
  x3.check_consistent(game);
  State x4 = State::all_on(game, 0);
  run_random_local_search(game, x4, rng, 100);
  x4.check_consistent(game);
}

}  // namespace
}  // namespace cid
