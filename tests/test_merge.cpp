// Shard-merge guarantees (src/sweep/shard.hpp, persist::merge_manifests,
// tools/cid_merge.cpp drives the same library calls).
//
// The acceptance contract: splitting a grid over K shards — each shard a
// separate run_sweep invocation writing its own manifest — and merging
// the shard manifests must produce a file byte-identical to the manifest
// an unsharded threads=1 sweep writes. trial_shard() is a pure function
// of (grid fingerprint, cell, trial), so the K shards partition the grid
// with no coordination, and write_manifest_canonical emits records in
// (cell, trial) order — exactly the completion order of a threads=1
// unsharded sweep.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "persist/binio.hpp"
#include "persist/manifest.hpp"
#include "sweep/runner.hpp"
#include "sweep/shard.hpp"

namespace cid::sweep {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SweepGrid merge_grid() {
  SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 4.0}};
  grid.protocols = parse_protocol_list("imitation,combined");
  grid.ns = {200, 500};
  grid.trials = 4;  // 4 cells x 4 = 16 trials
  grid.master_seed = 31;
  grid.dynamics.max_rounds = 2000;
  return grid;
}

SweepOptions manifest_options(const std::string& manifest) {
  SweepOptions options;
  options.threads = 1;
  options.manifest_path = manifest;
  return options;
}

TEST(ShardSpec, ParseAndValidate) {
  const ShardSpec spec = parse_shard_spec("2/8");
  EXPECT_EQ(spec.index, 2);
  EXPECT_EQ(spec.count, 8);
  EXPECT_THROW(parse_shard_spec("8/8"), std::runtime_error);
  EXPECT_THROW(parse_shard_spec("-1/4"), std::runtime_error);
  EXPECT_THROW(parse_shard_spec("1"), std::runtime_error);
  EXPECT_THROW(parse_shard_spec("a/b"), std::runtime_error);
  EXPECT_THROW(parse_shard_spec("1/0"), std::runtime_error);
}

TEST(ShardSpec, TrialShardPartitionsDeterministically) {
  for (const int count : {2, 4, 8}) {
    for (std::uint32_t cell = 0; cell < 4; ++cell) {
      for (std::uint32_t trial = 0; trial < 4; ++trial) {
        const int shard = trial_shard(0xDEADBEEFu, cell, trial, count);
        EXPECT_GE(shard, 0);
        EXPECT_LT(shard, count);
        // Pure function: every re-evaluation agrees.
        EXPECT_EQ(trial_shard(0xDEADBEEFu, cell, trial, count), shard);
      }
    }
  }
  // count=1 is the unsharded degenerate case.
  EXPECT_EQ(trial_shard(7, 3, 2, 1), 0);
}

// The tentpole byte-identity claim, for 2-, 4-, and 8-way sharding.
TEST(Merge, ShardedSweepsMergeByteIdenticalToUnsharded) {
  const SweepGrid grid = merge_grid();
  const std::string unsharded_path = temp_path("merge_unsharded.manifest");
  const SweepResult unsharded =
      run_sweep(grid, manifest_options(unsharded_path));
  EXPECT_TRUE(unsharded.complete);
  const std::string reference = persist::slurp_file(unsharded_path);

  for (const int count : {2, 4, 8}) {
    SCOPED_TRACE(count);
    std::vector<std::string> shard_paths;
    std::size_t shard_trials = 0;
    for (int index = 0; index < count; ++index) {
      const std::string path = temp_path(
          "merge_s" + std::to_string(index) + "_of" + std::to_string(count) +
          ".manifest");
      SweepOptions options = manifest_options(path);
      options.shard_index = index;
      options.shard_count = count;
      const SweepResult shard = run_sweep(grid, options);
      EXPECT_TRUE(shard.complete);
      EXPECT_TRUE(shard.sharded);
      EXPECT_TRUE(shard.cells.empty());  // no aggregation of a shard
      shard_trials += shard.ran_trials;
      shard_paths.push_back(path);
    }
    // The shards partition the grid: every trial ran exactly once.
    EXPECT_EQ(shard_trials, unsharded.trials.size());

    const persist::MergeReport report =
        persist::merge_manifests(shard_paths, {});
    EXPECT_EQ(report.completed.size(), unsharded.trials.size());
    EXPECT_EQ(report.duplicate_records, 0u);
    const std::string merged_path =
        temp_path("merged_" + std::to_string(count) + ".manifest");
    persist::write_manifest_canonical(merged_path, report);
    EXPECT_EQ(persist::slurp_file(merged_path), reference);

    // Input order must not matter (canonical = reproducible).
    std::vector<std::string> reversed(shard_paths.rbegin(),
                                      shard_paths.rend());
    const persist::MergeReport reordered =
        persist::merge_manifests(reversed, {});
    persist::write_manifest_canonical(merged_path, reordered);
    EXPECT_EQ(persist::slurp_file(merged_path), reference);

    for (const std::string& path : shard_paths) std::remove(path.c_str());
    std::remove(merged_path.c_str());
  }
  std::remove(unsharded_path.c_str());
}

// Overlapping inputs (e.g. a shard merged twice, or a shard plus the full
// run) collapse identical duplicates silently.
TEST(Merge, IdenticalDuplicatesCollapse) {
  const SweepGrid grid = merge_grid();
  const std::string a = temp_path("dup_a.manifest");
  run_sweep(grid, manifest_options(a));
  const persist::MergeReport report = persist::merge_manifests({a, a}, {});
  EXPECT_EQ(report.completed.size(),
            static_cast<std::size_t>(grid.trials) * 4);
  EXPECT_EQ(report.duplicate_records, report.completed.size());
  EXPECT_EQ(report.conflicts, 0u);
  std::remove(a.c_str());
}

// Conflicting duplicates abort by default; --keep-first resolves them in
// argument order.
TEST(Merge, ConflictingDuplicatesAbortUnlessKeepFirst) {
  SweepGrid grid = merge_grid();
  const std::string a = temp_path("conflict_a.manifest");
  const std::string b = temp_path("conflict_b.manifest");
  {
    persist::ManifestWriter writer = persist::ManifestWriter::create(a, grid);
    TrialOutcome outcome;
    outcome.rounds = 10;
    writer.append(0, 0, outcome);
    writer.close();
  }
  {
    persist::ManifestWriter writer = persist::ManifestWriter::create(b, grid);
    TrialOutcome outcome;
    outcome.rounds = 20;  // same (cell, trial), different payload
    writer.append(0, 0, outcome);
    writer.close();
  }
  EXPECT_THROW(persist::merge_manifests({a, b}, {}),
               persist::persist_error);
  persist::MergeOptions keep_first;
  keep_first.keep_first_on_conflict = true;
  const persist::MergeReport report =
      persist::merge_manifests({a, b}, keep_first);
  EXPECT_EQ(report.conflicts, 1u);
  ASSERT_EQ(report.completed.size(), 1u);
  EXPECT_EQ(report.completed.begin()->second.rounds, 10);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// An unreadable input is tolerated up to MergeOptions::max_corrupt_inputs
// and always reported; past the budget the merge aborts.
TEST(Merge, UnreadableInputToleratedUpToBudget) {
  const SweepGrid grid = merge_grid();
  const std::string good = temp_path("tol_good.manifest");
  run_sweep(grid, manifest_options(good));
  const std::string bad = temp_path("tol_bad.manifest");
  {
    std::ofstream out(bad, std::ios::binary);
    out << "this is not a manifest";
  }
  const std::string reference = persist::slurp_file(good);

  persist::MergeOptions tolerant;
  tolerant.max_corrupt_inputs = 1;
  const persist::MergeReport report =
      persist::merge_manifests({bad, good}, tolerant);
  ASSERT_EQ(report.corrupt_inputs.size(), 1u);
  EXPECT_EQ(report.corrupt_inputs[0], bad);
  const std::string merged = temp_path("tol_merged.manifest");
  persist::write_manifest_canonical(merged, report);
  EXPECT_EQ(persist::slurp_file(merged), reference);

  persist::MergeOptions strict;
  strict.max_corrupt_inputs = 0;
  EXPECT_THROW(persist::merge_manifests({bad, good}, strict),
               persist::persist_error);
  // All inputs unreadable is always fatal — there is nothing to merge.
  EXPECT_THROW(persist::merge_manifests({bad}, tolerant),
               persist::persist_error);

  std::remove(good.c_str());
  std::remove(bad.c_str());
  std::remove(merged.c_str());
}

// Inputs from different grids never merge: the fingerprint check is the
// guard against silently mixing incompatible sweeps.
TEST(Merge, GridMismatchIsNeverTolerated) {
  const SweepGrid grid = merge_grid();
  SweepGrid other = merge_grid();
  other.master_seed = 32;
  const std::string a = temp_path("mix_a.manifest");
  const std::string b = temp_path("mix_b.manifest");
  run_sweep(grid, manifest_options(a));
  run_sweep(other, manifest_options(b));
  persist::MergeOptions tolerant;
  tolerant.max_corrupt_inputs = 8;  // mismatch is not "corruption"
  EXPECT_THROW(persist::merge_manifests({a, b}, tolerant),
               persist::grid_mismatch_error);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// A CRC-bad record slot inside one input is skipped record-by-record (the
// tolerant loader), not by dropping the whole input: merging a damaged
// shard with an intact full run still reconstructs the canonical file.
TEST(Merge, CorruptRecordSlotInsideAnInputIsSkipped) {
  const SweepGrid grid = merge_grid();
  const std::string full = temp_path("slot_full.manifest");
  run_sweep(grid, manifest_options(full));
  const std::string reference = persist::slurp_file(full);

  const std::string damaged = temp_path("slot_damaged.manifest");
  {
    std::ofstream out(damaged, std::ios::binary | std::ios::trunc);
    std::string bytes = reference;
    bytes[bytes.size() - 200] ^= 0x5A;  // flip a byte mid-records
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const persist::ManifestContents damaged_contents =
      persist::load_manifest_raw(damaged);
  EXPECT_EQ(damaged_contents.corrupt_records, 1u);
  EXPECT_EQ(damaged_contents.completed.size(),
            static_cast<std::size_t>(grid.trials) * 4 - 1);

  const persist::MergeReport report =
      persist::merge_manifests({damaged, full}, {});
  EXPECT_EQ(report.corrupt_records, 1u);
  const std::string merged = temp_path("slot_merged.manifest");
  persist::write_manifest_canonical(merged, report);
  EXPECT_EQ(persist::slurp_file(merged), reference);

  std::remove(full.c_str());
  std::remove(damaged.c_str());
  std::remove(merged.c_str());
}

// More shards than trials: the partition still covers the grid, the
// surplus shards run zero trials and write header-only manifests, and
// merging all K — empties included — reconstructs the canonical bytes.
TEST(Merge, MoreShardsThanTrialsYieldsEmptyShardsThatStillMerge) {
  const SweepGrid grid = merge_grid();  // 16 trials
  const std::string unsharded_path = temp_path("over_unsharded.manifest");
  const SweepResult unsharded =
      run_sweep(grid, manifest_options(unsharded_path));
  const std::string reference = persist::slurp_file(unsharded_path);

  const int count = 32;
  std::vector<std::string> shard_paths;
  std::size_t empty_shards = 0;
  for (int index = 0; index < count; ++index) {
    const std::string path =
        temp_path("over_s" + std::to_string(index) + ".manifest");
    SweepOptions options = manifest_options(path);
    options.shard_index = index;
    options.shard_count = count;
    const SweepResult shard = run_sweep(grid, options);
    EXPECT_TRUE(shard.complete);
    if (shard.ran_trials == 0) ++empty_shards;
    shard_paths.push_back(path);
  }
  // 32 shards cannot all land one of 16 trials.
  EXPECT_GE(empty_shards, static_cast<std::size_t>(count) -
                              unsharded.trials.size());

  const persist::MergeReport report =
      persist::merge_manifests(shard_paths, {});
  EXPECT_EQ(report.completed.size(), unsharded.trials.size());
  const std::string merged = temp_path("over_merged.manifest");
  persist::write_manifest_canonical(merged, report);
  EXPECT_EQ(persist::slurp_file(merged), reference);

  for (const std::string& path : shard_paths) std::remove(path.c_str());
  std::remove(merged.c_str());
  std::remove(unsharded_path.c_str());
}

// The degenerate grid: one cell, one trial. Exactly one of K shards owns
// the single trial; the merge of one populated and K-1 empty manifests
// is byte-identical to the unsharded file.
TEST(Merge, SingleTrialGridShardsAndMergesExactly) {
  SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 3.0}};
  grid.protocols = parse_protocol_list("imitation");
  grid.ns = {150};
  grid.trials = 1;  // 1 cell x 1 = the whole grid
  grid.master_seed = 5;
  grid.dynamics.max_rounds = 2000;

  const std::string unsharded_path = temp_path("single_unsharded.manifest");
  const SweepResult unsharded =
      run_sweep(grid, manifest_options(unsharded_path));
  EXPECT_EQ(unsharded.trials.size(), 1u);
  const std::string reference = persist::slurp_file(unsharded_path);

  const int count = 4;
  std::vector<std::string> shard_paths;
  std::size_t owners = 0;
  for (int index = 0; index < count; ++index) {
    const std::string path =
        temp_path("single_s" + std::to_string(index) + ".manifest");
    SweepOptions options = manifest_options(path);
    options.shard_index = index;
    options.shard_count = count;
    owners += run_sweep(grid, options).ran_trials;
    shard_paths.push_back(path);
  }
  EXPECT_EQ(owners, 1u);  // exactly one shard owns the single trial

  const persist::MergeReport report =
      persist::merge_manifests(shard_paths, {});
  EXPECT_EQ(report.completed.size(), 1u);
  const std::string merged = temp_path("single_merged.manifest");
  persist::write_manifest_canonical(merged, report);
  EXPECT_EQ(persist::slurp_file(merged), reference);

  for (const std::string& path : shard_paths) std::remove(path.c_str());
  std::remove(merged.c_str());
  std::remove(unsharded_path.c_str());
}

// The cid_merge --expect-complete contract over a mix of empty and
// populated inputs: completeness is a property of the union — empty
// manifests neither complete a merge on their own nor spoil one that the
// populated inputs already complete.
TEST(Merge, ExpectCompleteAcrossEmptyAndPopulatedShards) {
  const SweepGrid grid = merge_grid();
  const std::string full = temp_path("mixfull.manifest");
  run_sweep(grid, manifest_options(full));
  const std::string reference = persist::slurp_file(full);

  const std::string empty_a = temp_path("mixempty_a.manifest");
  const std::string empty_b = temp_path("mixempty_b.manifest");
  for (const std::string& path : {empty_a, empty_b}) {
    persist::ManifestWriter writer =
        persist::ManifestWriter::create(path, grid);
    writer.close();  // header, zero records: a shard that ran no trials
  }

  // Empties mixed with the full run: complete, and byte-stable.
  const persist::MergeReport mixed =
      persist::merge_manifests({empty_a, full, empty_b}, {});
  const std::size_t expected =
      static_cast<std::size_t>(mixed.cells) * mixed.trials_per_cell;
  EXPECT_EQ(mixed.completed.size(), expected);  // --expect-complete passes
  const std::string merged = temp_path("mix_merged.manifest");
  persist::write_manifest_canonical(merged, mixed);
  EXPECT_EQ(persist::slurp_file(merged), reference);

  // Empties alone: a valid merge, visibly incomplete.
  const persist::MergeReport empties =
      persist::merge_manifests({empty_a, empty_b}, {});
  EXPECT_EQ(empties.completed.size(), 0u);
  EXPECT_LT(empties.completed.size(),
            static_cast<std::size_t>(empties.cells) *
                empties.trials_per_cell);  // --expect-complete fails

  for (const std::string& path :
       {full, empty_a, empty_b, merged}) {
    std::remove(path.c_str());
  }
}

// Missing trials surface in the report (the cid_merge --expect-complete
// contract): merging a strict subset of shards is fine, but incomplete.
TEST(Merge, IncompleteMergeIsVisibleInTheReport) {
  const SweepGrid grid = merge_grid();
  const std::string shard0 = temp_path("inc_s0.manifest");
  SweepOptions options = manifest_options(shard0);
  options.shard_index = 0;
  options.shard_count = 2;
  const SweepResult shard = run_sweep(grid, options);
  const persist::MergeReport report =
      persist::merge_manifests({shard0}, {});
  EXPECT_EQ(report.completed.size(), shard.ran_trials);
  EXPECT_LT(report.completed.size(),
            static_cast<std::size_t>(report.cells) * report.trials_per_cell);
  std::remove(shard0.c_str());
}

}  // namespace
}  // namespace cid::sweep
