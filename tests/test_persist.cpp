// Unit tests for the persistence substrate (src/persist/): binary I/O
// primitives, checksummed file framing, the game/state codecs, snapshot
// round trips, the event log (including killed-writer tail recovery), and
// the sweep manifest (including grid-fingerprint enforcement). The
// end-to-end kill-and-resume guarantees live in test_resume.cpp and
// test_sweep_resume.cpp; this file pins down the formats those rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "game/asymmetric.hpp"
#include "game/builders.hpp"
#include "game/io.hpp"
#include "latency/latency.hpp"
#include "lowerbound/maxcut.hpp"
#include "lowerbound/threshold_game.hpp"
#include "persist/binio.hpp"
#include "persist/block.hpp"
#include "persist/codec.hpp"
#include "persist/eventlog.hpp"
#include "persist/manifest.hpp"
#include "persist/snapshot.hpp"
#include "util/rng.hpp"

namespace cid::persist {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Crc32, MatchesReferenceVector) {
  // The canonical CRC-32 check value for "123456789".
  const std::string data = "123456789";
  EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926u);
  // Piecewise checksumming continues from the seed.
  const std::uint32_t part = crc32(data.data(), 4);
  EXPECT_EQ(crc32(data.data() + 4, 5, part), 0xCBF43926u);
}

TEST(BinIo, PrimitiveRoundTrip) {
  BinWriter out;
  out.u8(0xAB);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.i64(-42);
  out.f64(-0.1);  // not exactly representable — must round-trip bit-exactly
  out.str("hello\0world");
  BinReader in(out.buffer(), "test");
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_EQ(in.f64(), -0.1);
  EXPECT_EQ(in.str(), std::string("hello"));
  EXPECT_NO_THROW(in.expect_done());
}

TEST(BinIo, TruncatedReadThrows) {
  BinWriter out;
  out.u32(7);
  BinReader in(out.buffer(), "test");
  EXPECT_THROW(in.u64(), persist_error);
}

TEST(BinIo, VarintRoundTripAcrossTheRange) {
  const std::uint64_t unsigned_cases[] = {
      0, 1, 127, 128, 300, 0xFFFF, 0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};
  const std::int64_t signed_cases[] = {
      0, 1, -1, 63, -64, 64, -65, 1'000'000, -1'000'000,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  BinWriter out;
  for (std::uint64_t v : unsigned_cases) out.vu64(v);
  for (std::int64_t v : signed_cases) out.vi64(v);
  BinReader in(out.buffer(), "test");
  for (std::uint64_t v : unsigned_cases) EXPECT_EQ(in.vu64(), v);
  for (std::int64_t v : signed_cases) EXPECT_EQ(in.vi64(), v);
  EXPECT_NO_THROW(in.expect_done());

  // Small magnitudes of either sign are one byte — the property the v2
  // event-log size depends on.
  BinWriter small;
  small.vi64(-1);
  EXPECT_EQ(small.buffer().size(), 1u);
}

TEST(BinIo, VarintRejectsOverlongAndOverflowingEncodings) {
  // 11 continuation bytes: longer than any valid u64 varint.
  const std::string overlong(11, '\x80');
  BinReader in(overlong, "test");
  EXPECT_THROW(in.vu64(), persist_error);
  // 10 bytes whose top byte overflows 64 bits.
  std::string overflow(9, '\x80');
  overflow.push_back('\x7F');
  BinReader in2(overflow, "test");
  EXPECT_THROW(in2.vu64(), persist_error);
}

TEST(BinIo, SectionScanFindsKnownAndSkipsUnknownTags) {
  BinWriter payload;
  write_section(payload, 1, "alpha");
  write_section(payload, 999, "from-the-future");
  write_section(payload, 2, "beta");
  const SectionScan scan(payload.buffer(), "test");
  ASSERT_EQ(scan.sections().size(), 3u);
  EXPECT_EQ(scan.require(1, "alpha"), "alpha");
  EXPECT_EQ(scan.require(2, "beta"), "beta");
  EXPECT_EQ(scan.find(999).value(), "from-the-future");
  EXPECT_FALSE(scan.find(3).has_value());
  EXPECT_THROW(scan.require(3, "gamma"), persist_error);

  // Truncated section bodies throw instead of mis-parsing.
  const std::string& bytes = payload.buffer();
  EXPECT_THROW(SectionScan(std::string_view(bytes).substr(0, 8), "test"),
               persist_error);
}

TEST(BlockCodec, RoundTripsStructuredAndRandomData) {
  Rng rng(11);
  // Repetitive (event-log-like), constant (RLE), and random inputs.
  std::string repetitive;
  for (int i = 0; i < 2000; ++i) {
    repetitive += "round";
    repetitive.push_back(static_cast<char>(i % 7));
  }
  std::string constant(4096, '\0');
  std::string random;
  for (int i = 0; i < 1000; ++i) {
    random.push_back(static_cast<char>(rng.uniform_int(256)));
  }
  for (const std::string& input : {repetitive, constant, random,
                                   std::string(), std::string("abc")}) {
    const auto [codec, stored] = encode_block(input);
    EXPECT_EQ(decode_block(codec, stored, input.size(), "test"), input);
  }
  // The compressible cases must actually compress.
  EXPECT_LT(encode_block(repetitive).second.size(), repetitive.size() / 4);
  EXPECT_LT(encode_block(constant).second.size(), 64u);
}

TEST(BlockCodec, MalformedStreamsThrowInsteadOfCorrupting) {
  const std::string input(1000, 'x');
  auto [codec, stored] = encode_block(input);
  ASSERT_EQ(codec, kBlockLz);
  // Truncation at every prefix either throws or (never) returns wrong data.
  for (std::size_t cut = 0; cut < stored.size(); ++cut) {
    try {
      const std::string out = decode_block(
          codec, std::string_view(stored).substr(0, cut), input.size(),
          "test");
      EXPECT_EQ(out, input);  // only acceptable non-throw outcome
    } catch (const persist_error&) {
    }
  }
  // Declared-size mismatch throws.
  EXPECT_THROW(decode_block(codec, stored, input.size() + 1, "test"),
               persist_error);
  EXPECT_THROW(decode_block(2, stored, input.size(), "test"), persist_error);
}

TEST(BinIo, FramedFileRoundTripAndCorruptionDetection) {
  const std::string path = temp_path("framed.bin");
  const std::string payload = "some payload bytes";
  write_file_atomic(path, "CIDTEST", 1, payload);
  const FramedFile file = read_file_checked(path, "CIDTEST", 1);
  EXPECT_EQ(file.version, 1);
  EXPECT_EQ(file.payload, payload);

  // Wrong magic and future versions are rejected.
  EXPECT_THROW(read_file_checked(path, "CIDSNAP", 1), persist_error);
  EXPECT_THROW(read_file_checked(path, "CIDTEST", 0), persist_error);

  // A single flipped payload byte must fail the checksum.
  std::string data = slurp_file(path);
  data[10] = static_cast<char>(data[10] ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
  }
  EXPECT_THROW(read_file_checked(path, "CIDTEST", 1), persist_error);
  std::remove(path.c_str());
}

CongestionGame codec_exercise_game() {
  // One latency of every serializable class.
  std::vector<LatencyPtr> fns;
  fns.push_back(make_constant(10.0));
  fns.push_back(make_monomial(2.5, 3.0));
  fns.push_back(make_polynomial({1.0, 0.0, 0.25}));
  fns.push_back(make_exponential(2.0, 0.125));
  fns.push_back(make_scaled(make_monomial(1.5, 2.0), 100));
  std::vector<Strategy> strategies = {{0, 1}, {2, 3}, {1, 4}, {0}};
  return CongestionGame(std::move(fns), std::move(strategies), 400);
}

TEST(Codec, GameRoundTripPreservesTextSerialization) {
  const CongestionGame game = codec_exercise_game();
  BinWriter out;
  encode_game(out, game);
  BinReader in(out.buffer(), "test");
  const CongestionGame decoded = decode_game(in);
  EXPECT_NO_THROW(in.expect_done());
  // The text format is the canonical description; binary decode must agree
  // with it exactly (doubles included — the codec stores IEEE words).
  EXPECT_EQ(serialize_game(decoded), serialize_game(game));
}

TEST(Codec, StateRoundTrip) {
  const CongestionGame game = codec_exercise_game();
  Rng rng(5);
  const State x = State::uniform_random(game, rng);
  BinWriter out;
  encode_state(out, x);
  BinReader in(out.buffer(), "test");
  const State decoded = decode_state(in, game);
  EXPECT_TRUE(decoded == x);
}

TEST(Snapshot, RoundTripPreservesEveryField) {
  const CongestionGame game = codec_exercise_game();
  Rng rng(17);
  const State x = State::uniform_random(game, rng);
  SimConfig config;
  config.protocol = "combined";
  config.lambda = 0.5;
  config.p_explore = 0.25;
  config.nu_cutoff = false;
  config.damping = true;
  config.virtual_agents = 3;
  config.engine = 1;
  config.stop = "deltaeps:0.05,0.1";

  const std::string path = temp_path("roundtrip.snap");
  save_snapshot(make_snapshot(game, x, rng, 12345, config), path);
  const Snapshot loaded = load_snapshot(path);
  EXPECT_EQ(loaded.round, 12345);
  EXPECT_EQ(loaded.config, config);
  EXPECT_EQ(loaded.rng_state, rng.state());
  EXPECT_EQ(serialize_game(loaded.game), serialize_game(game));
  EXPECT_TRUE(loaded.state() == x);
  std::remove(path.c_str());
}

TEST(Snapshot, RestoredRngContinuesTheExactStream) {
  const CongestionGame game = codec_exercise_game();
  Rng rng(99);
  const State x = State::uniform_random(game, rng);
  const std::string path = temp_path("rngcontinue.snap");
  save_snapshot(make_snapshot(game, x, rng, 0, SimConfig{}), path);

  // Continue the original and the restored stream side by side.
  std::vector<std::uint64_t> original;
  for (int i = 0; i < 64; ++i) original.push_back(rng.next_u64());
  Rng restored;
  restored.set_state(load_snapshot(path).rng_state);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(restored.next_u64(), original[i]);
  std::remove(path.c_str());
}

TEST(EventLog, WriteReadRoundTrip) {
  const std::string path = temp_path("roundtrip.elog");
  {
    EventLogWriter writer = EventLogWriter::create(path);
    writer.append(0, std::vector<Migration>{{0, 1, 5}, {2, 0, 3}});
    writer.append(1, std::vector<Migration>{});
    writer.append(2, std::vector<Migration>{{1, 2, 1}});
    writer.close();
  }
  const EventLog log = read_event_log(path);
  EXPECT_EQ(log.version, kEventLogVersion);
  EXPECT_FALSE(log.truncated_tail);
  ASSERT_EQ(log.rounds.size(), 3u);
  EXPECT_EQ(log.rounds[0].round, 0);
  ASSERT_EQ(log.rounds[0].moves.size(), 2u);
  EXPECT_EQ(log.rounds[0].moves[1].from, 2);
  EXPECT_EQ(log.rounds[0].moves[1].count, 3);
  EXPECT_TRUE(log.rounds[1].moves.empty());
  EXPECT_EQ(log.rounds[2].round, 2);
  std::remove(path.c_str());
}

TEST(EventLog, DamagedTailIsDetectedAndDroppedOnAppend) {
  const std::string path = temp_path("damaged.elog");
  {
    EventLogWriter writer = EventLogWriter::create(path);
    writer.append(0, std::vector<Migration>{{0, 1, 2}});
    writer.append(1, std::vector<Migration>{{1, 0, 2}});
    writer.close();
  }
  {  // Simulate a killed writer: half a record of garbage at the end.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "garbage!";
  }
  const EventLog damaged = read_event_log(path);
  EXPECT_TRUE(damaged.truncated_tail);
  ASSERT_EQ(damaged.rounds.size(), 2u);

  // Appending at round 2 truncates the garbage and continues cleanly.
  {
    EventLogWriter writer = EventLogWriter::open_for_append(path, 2);
    writer.append(2, std::vector<Migration>{{0, 1, 1}});
    writer.close();
  }
  const EventLog repaired = read_event_log(path);
  EXPECT_FALSE(repaired.truncated_tail);
  ASSERT_EQ(repaired.rounds.size(), 3u);
  EXPECT_EQ(repaired.rounds[2].round, 2);
  std::remove(path.c_str());
}

TEST(EventLog, AppendDropsRecordsAtOrBeyondTheResumeRound) {
  const std::string path = temp_path("truncate.elog");
  {
    EventLogWriter writer = EventLogWriter::create(path);
    for (std::int64_t r = 0; r < 10; ++r) {
      writer.append(r, std::vector<Migration>{{0, 1, r + 1}});
    }
    writer.close();
  }
  // Resume from a snapshot taken at round 6: rounds 6..9 must go.
  {
    EventLogWriter writer = EventLogWriter::open_for_append(path, 6);
    writer.append(6, std::vector<Migration>{{1, 0, 100}});
    writer.close();
  }
  const EventLog log = read_event_log(path);
  ASSERT_EQ(log.rounds.size(), 7u);
  EXPECT_EQ(log.rounds[5].moves[0].count, 6);
  EXPECT_EQ(log.rounds[6].moves[0].count, 100);
  std::remove(path.c_str());
}

TEST(EventLog, CompressedBlocksShrinkLongQuietRuns) {
  const std::string v2 = temp_path("quiet.elog");
  const std::string v1 = temp_path("quiet_v1.elog");
  EventLogOptions uncompressed;
  uncompressed.compress = false;
  {
    EventLogWriter w2 = EventLogWriter::create(v2);
    EventLogWriter w1 = EventLogWriter::create(v1, uncompressed);
    // A realistic long tail: a few active rounds, then near-silence.
    for (std::int64_t r = 0; r < 5000; ++r) {
      std::vector<Migration> moves;
      if (r < 10) moves = {{0, 1, 5 + r}, {2, 0, 3}};
      if (r % 97 == 0) moves.push_back({1, 2, 1});
      w2.append(r, moves);
      w1.append(r, moves);
    }
    w2.close();
    w1.close();
  }
  const EventLog compressed = read_event_log(v2);
  const EventLog baseline = read_event_log(v1);
  ASSERT_EQ(compressed.rounds.size(), 5000u);
  ASSERT_EQ(baseline.rounds.size(), 5000u);
  for (std::size_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(compressed.rounds[i].round, baseline.rounds[i].round);
    ASSERT_EQ(compressed.rounds[i].moves.size(),
              baseline.rounds[i].moves.size());
    for (std::size_t m = 0; m < compressed.rounds[i].moves.size(); ++m) {
      EXPECT_EQ(compressed.rounds[i].moves[m].from,
                baseline.rounds[i].moves[m].from);
      EXPECT_EQ(compressed.rounds[i].moves[m].to,
                baseline.rounds[i].moves[m].to);
      EXPECT_EQ(compressed.rounds[i].moves[m].count,
                baseline.rounds[i].moves[m].count);
    }
  }
  // The acceptance bar is >= 5x on long runs; this mostly-quiet log
  // should beat it comfortably. v1_equivalent_bytes mirrors the v1 file.
  EXPECT_EQ(compressed.v1_equivalent_bytes, baseline.file_bytes);
  EXPECT_GE(baseline.file_bytes, 5 * compressed.file_bytes);
  std::remove(v2.c_str());
  std::remove(v1.c_str());
}

TEST(EventLog, TruncatedCompressedBlockTailIsRecovered) {
  const std::string path = temp_path("blocktail.elog");
  {
    EventLogWriter writer = EventLogWriter::create(path);
    // 600 rounds = 2 full blocks (256) + one partial (88).
    for (std::int64_t r = 0; r < 600; ++r) {
      writer.append(r, std::vector<Migration>{{0, 1, r % 5}});
    }
    writer.close();
  }
  const std::string intact = slurp_file(path);
  const EventLog full = read_event_log(path);
  ASSERT_EQ(full.rounds.size(), 600u);
  EXPECT_FALSE(full.truncated_tail);

  // Cut the file mid-way through the final block (a killed writer whose
  // last fwrite landed partially): the intact prefix must survive.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << intact.substr(0, intact.size() - 20);
  }
  const EventLog damaged = read_event_log(path);
  EXPECT_TRUE(damaged.truncated_tail);
  ASSERT_EQ(damaged.rounds.size(), 512u);  // the two full blocks

  // ...and a bit-flip INSIDE an intact-length block must fail its CRC,
  // not decode garbage.
  std::string corrupt = intact;
  corrupt[corrupt.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  const EventLog crc_damaged = read_event_log(path);
  EXPECT_TRUE(crc_damaged.truncated_tail);
  EXPECT_LT(crc_damaged.rounds.size(), 600u);

  // open_for_append on the truncated file drops the tail and continues;
  // the repaired file must equal an uninterrupted writer's output.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << intact.substr(0, intact.size() - 20);
  }
  {
    EventLogWriter writer = EventLogWriter::open_for_append(path, 512);
    for (std::int64_t r = 512; r < 600; ++r) {
      writer.append(r, std::vector<Migration>{{0, 1, r % 5}});
    }
    writer.close();
  }
  EXPECT_EQ(slurp_file(path), intact);
  std::remove(path.c_str());
}

TEST(EventLog, ResumeBoundariesAreDeterministic) {
  // Killing at an arbitrary round and resuming must reproduce the
  // uninterrupted file bytes — block framing is a pure function of round
  // numbers, not kill points.
  const std::string reference_path = temp_path("boundary_ref.elog");
  auto moves_for = [](std::int64_t r) {
    std::vector<Migration> moves;
    if (r % 3 == 0) moves.push_back({0, 1, r + 1});
    if (r % 7 == 0) moves.push_back({1, 0, 2});
    return moves;
  };
  {
    EventLogWriter writer = EventLogWriter::create(reference_path);
    for (std::int64_t r = 0; r < 700; ++r) writer.append(r, moves_for(r));
    writer.close();
  }
  const std::string reference = slurp_file(reference_path);
  for (std::int64_t kill : {1, 255, 256, 257, 511, 650}) {
    const std::string path = temp_path("boundary_kill.elog");
    {
      EventLogWriter writer = EventLogWriter::create(path);
      for (std::int64_t r = 0; r < kill; ++r) writer.append(r, moves_for(r));
      writer.close();
    }
    {
      EventLogWriter writer = EventLogWriter::open_for_append(path, kill);
      for (std::int64_t r = kill; r < 700; ++r) {
        writer.append(r, moves_for(r));
      }
      writer.close();
    }
    EXPECT_EQ(slurp_file(path), reference) << "kill at round " << kill;
    std::remove(path.c_str());
  }
  std::remove(reference_path.c_str());
}

TEST(EventLog, GaplessAppendIsEnforced) {
  const std::string path = temp_path("gapless.elog");
  EventLogWriter writer = EventLogWriter::create(path);
  writer.append(0, std::vector<Migration>{});
  writer.append(1, std::vector<Migration>{});
  EXPECT_THROW(writer.append(3, std::vector<Migration>{}), persist_error);
  writer.close();

  // Resuming past the end of a log refuses to leave a gap.
  EXPECT_THROW(EventLogWriter::open_for_append(path, 5), persist_error);
  std::remove(path.c_str());
}

TEST(EventLog, RotationSplitsAndSeriesReadReassembles) {
  const std::string path = temp_path("rotate.elog");
  EventLogOptions options;
  options.rotate_bytes = 200;  // tiny: force several segments
  options.block_rounds = 16;
  {
    EventLogWriter writer = EventLogWriter::create(path, options);
    for (std::int64_t r = 0; r < 400; ++r) {
      writer.append(r, std::vector<Migration>{{0, 1, r}});
    }
    writer.close();
  }
  EXPECT_TRUE(std::ifstream(path + ".1").good());
  const EventLog merged = read_event_log_series(path);
  ASSERT_EQ(merged.rounds.size(), 400u);
  for (std::int64_t r = 0; r < 400; ++r) {
    EXPECT_EQ(merged.rounds[static_cast<std::size_t>(r)].round, r);
  }
  // A fresh create() at the same path owns the chain again.
  EventLogWriter::create(path, options).close();
  EXPECT_FALSE(std::ifstream(path + ".1").good());
  std::remove(path.c_str());
}

TEST(EventLog, ResumeIntoAFreshlyRotatedSegmentCannotDuplicateRounds) {
  // Right after a rotation the active segment is header-only; resuming at
  // a round the rotated chain already holds must fail loudly (silently
  // re-appending would duplicate rounds and corrupt replay), resuming at
  // the chain's continuation point must work, and resuming beyond it must
  // be rejected as a gap.
  const std::string path = temp_path("rotate_resume.elog");
  EventLogOptions options;
  options.block_rounds = 8;
  options.rotate_bytes = 1;  // rotate after every flushed block
  {
    EventLogWriter writer = EventLogWriter::create(path, options);
    for (std::int64_t r = 0; r < 8; ++r) {
      writer.append(r, std::vector<Migration>{{0, 1, r}});
    }
    writer.close();  // block [0,8) flushed and rotated; active = header
  }
  ASSERT_TRUE(std::ifstream(path + ".1").good());

  EXPECT_THROW(EventLogWriter::open_for_append(path, 6, options),
               persist_error);
  EXPECT_THROW(EventLogWriter::open_for_append(path, 10, options),
               persist_error);
  {
    EventLogWriter writer = EventLogWriter::open_for_append(path, 8, options);
    for (std::int64_t r = 8; r < 12; ++r) {
      writer.append(r, std::vector<Migration>{{1, 0, r}});
    }
    writer.close();
  }
  const EventLog merged = read_event_log_series(path);
  ASSERT_EQ(merged.rounds.size(), 12u);
  for (std::int64_t r = 0; r < 12; ++r) {
    EXPECT_EQ(merged.rounds[static_cast<std::size_t>(r)].round, r);
  }
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
  std::remove(path.c_str());
}

TEST(EventLog, UnknownHeaderSectionsAreSkipped) {
  // Old-reader/new-file: a future writer adds a header section; today's
  // reader must still parse the blocks.
  const std::string path = temp_path("future.elog");
  {
    EventLogWriter writer = EventLogWriter::create(path);
    writer.append(0, std::vector<Migration>{{0, 1, 2}});
    writer.close();
  }
  std::string data = slurp_file(path);
  // Rebuild the header with an extra unknown section appended.
  const std::uint32_t old_len = read_le32(data.data() + 8);
  const std::string blocks = data.substr(12 + old_len);
  BinWriter extra;
  write_section(extra, 4242, "hover-board calibration");
  const std::string sections =
      data.substr(12, old_len) + extra.buffer();
  BinWriter rebuilt;
  rebuilt.raw(data.data(), 8);  // magic + version
  rebuilt.u32(static_cast<std::uint32_t>(sections.size()));
  rebuilt.raw(sections.data(), sections.size());
  rebuilt.raw(blocks.data(), blocks.size());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << rebuilt.buffer();
  }
  const EventLog log = read_event_log(path);
  EXPECT_FALSE(log.truncated_tail);
  ASSERT_EQ(log.rounds.size(), 1u);
  EXPECT_EQ(log.rounds[0].moves[0].count, 2);
  std::remove(path.c_str());
}

// ---- Family codecs and snapshots --------------------------------------------

AsymmetricGame codec_exercise_asymmetric() {
  std::vector<LatencyPtr> fns;
  fns.push_back(make_linear(0.5));
  fns.push_back(make_monomial(1.0, 2.0));
  fns.push_back(make_linear(2.0));
  std::vector<PlayerClass> classes(2);
  classes[0].strategies = {{0}, {1}};
  classes[0].num_players = 40;
  classes[1].strategies = {{0}, {2}, {1, 2}};
  classes[1].num_players = 60;
  return AsymmetricGame(std::move(fns), std::move(classes));
}

TEST(Codec, AsymmetricGameAndStateRoundTrip) {
  const AsymmetricGame game = codec_exercise_asymmetric();
  BinWriter out;
  encode_asymmetric_game(out, game);
  BinReader in(out.buffer(), "test");
  const AsymmetricGame decoded = decode_asymmetric_game(in);
  EXPECT_NO_THROW(in.expect_done());
  EXPECT_EQ(decoded.describe(), game.describe());
  ASSERT_EQ(decoded.num_classes(), game.num_classes());
  for (std::int32_t c = 0; c < game.num_classes(); ++c) {
    EXPECT_EQ(decoded.player_class(c).num_players,
              game.player_class(c).num_players);
    EXPECT_EQ(decoded.player_class(c).strategies,
              game.player_class(c).strategies);
  }

  Rng rng(3);
  const AsymmetricState x = AsymmetricState::uniform_random(game, rng);
  BinWriter sout;
  encode_asymmetric_state(sout, x);
  BinReader sin(sout.buffer(), "test");
  const AsymmetricState loaded = decode_asymmetric_state(sin, game);
  EXPECT_EQ(loaded.counts(), x.counts());
}

TEST(Codec, MaxCutAndThresholdStateRoundTrip) {
  Rng rng(5);
  const MaxCutInstance inst = MaxCutInstance::random(8, 0.5, 64, rng);
  BinWriter out;
  encode_maxcut(out, inst);
  BinReader in(out.buffer(), "test");
  const MaxCutInstance decoded = decode_maxcut(in);
  EXPECT_NO_THROW(in.expect_done());
  EXPECT_EQ(decoded.weights(), inst.weights());  // bit-exact doubles

  const TripledGame tg = triple_quadratic_threshold(inst);
  ThresholdState s = tripled_initial_state(tg, 0b10110101u);
  BinWriter sout;
  encode_threshold_state(sout, s);
  BinReader sin(sout.buffer(), "test");
  const ThresholdState loaded = decode_threshold_state(sin, tg.game);
  EXPECT_EQ(loaded.in_bits(), s.in_bits());
}

TEST(Snapshot, AsymmetricRoundTripAndFamilyMismatchErrors) {
  const AsymmetricGame game = codec_exercise_asymmetric();
  Rng rng(9);
  const AsymmetricState x = AsymmetricState::uniform_random(game, rng);
  const std::string path = temp_path("asym.snap");
  AsymmetricSnapshot snapshot{1234, SimConfig{}, rng.state(), game,
                              x.counts(), 777};
  save_asymmetric_snapshot(snapshot, path);

  EXPECT_EQ(peek_snapshot_family(path), SnapshotFamily::kAsymmetric);
  const AsymmetricSnapshot loaded = load_asymmetric_snapshot(path);
  EXPECT_EQ(loaded.round, 1234);
  EXPECT_EQ(loaded.movers, 777);
  EXPECT_EQ(loaded.rng_state, rng.state());
  EXPECT_EQ(loaded.counts, x.counts());
  EXPECT_EQ(loaded.game.describe(), game.describe());

  // The wrong loader fails loudly instead of mis-decoding.
  EXPECT_THROW(load_snapshot(path), persist_error);
  EXPECT_THROW(load_threshold_snapshot(path), persist_error);
  std::remove(path.c_str());
}

TEST(Snapshot, ThresholdRoundTrip) {
  Rng rng(6);
  const MaxCutInstance inst = MaxCutInstance::random(6, 0.7, 32, rng);
  const TripledGame tg = triple_quadratic_threshold(inst);
  const ThresholdState s = tripled_initial_state(tg, 0b010101u);
  const std::string path = temp_path("threshold.snap");
  ThresholdSnapshot snapshot{42,   SimConfig{}, rng.state(),
                             inst, true,        s.in_bits(), 42};
  save_threshold_snapshot(snapshot, path);

  EXPECT_EQ(peek_snapshot_family(path), SnapshotFamily::kThreshold);
  const ThresholdSnapshot loaded = load_threshold_snapshot(path);
  EXPECT_EQ(loaded.round, 42);
  EXPECT_TRUE(loaded.tripled);
  EXPECT_EQ(loaded.instance.weights(), inst.weights());
  EXPECT_EQ(loaded.in_bits, s.in_bits());
  EXPECT_THROW(load_snapshot(path), persist_error);
  std::remove(path.c_str());
}

TEST(Snapshot, UnknownSectionsAreSkippedByTheReader) {
  // Old-reader/new-file: append a section today's reader does not know to
  // a valid v2 snapshot payload — it must load exactly as before.
  const CongestionGame game = codec_exercise_game();
  Rng rng(31);
  const State x = State::uniform_random(game, rng);
  Snapshot snapshot = make_snapshot(game, x, rng, 7, SimConfig{});
  std::string payload = snapshot_payload(snapshot);
  BinWriter extra;
  write_section(extra, 31337, std::string(100, 'z'));
  payload += extra.buffer();

  const std::string path = temp_path("future.snap");
  write_file_atomic(path, kSnapshotMagic, kSnapshotVersion, payload);
  const Snapshot loaded = load_snapshot(path);
  EXPECT_EQ(loaded.round, 7);
  EXPECT_TRUE(loaded.state() == x);
  EXPECT_EQ(serialize_game(loaded.game), serialize_game(game));

  // Even a version byte from the future is fine as long as the required
  // sections are present — the skip-unknown policy replaces refuse-newer.
  write_file_atomic(path, kSnapshotMagic, kSnapshotVersion + 1, payload);
  EXPECT_EQ(load_snapshot(path).round, 7);
  std::remove(path.c_str());
}

sweep::SweepGrid manifest_grid() {
  sweep::SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 4.0}};
  grid.protocols = sweep::parse_protocol_list("imitation");
  grid.ns = {100, 200};
  grid.trials = 3;
  grid.master_seed = 7;
  grid.dynamics.max_rounds = 50;
  return grid;
}

TEST(Manifest, AppendLoadRoundTripIsBitExact) {
  const std::string path = temp_path("roundtrip.manifest");
  const sweep::SweepGrid grid = manifest_grid();
  sweep::TrialOutcome outcome;
  outcome.rounds = 17.0;
  outcome.converged = true;
  outcome.movers = 123456789012345ll;
  outcome.potential = 0.1 + 0.2;  // a double with a messy bit pattern
  outcome.social_cost = -3.25;
  {
    ManifestWriter writer = ManifestWriter::create(path, grid);
    writer.append(1, 2, outcome);
    writer.close();
  }
  const ManifestContents contents = load_manifest(path, grid);
  EXPECT_EQ(contents.fingerprint, grid_fingerprint(grid));
  EXPECT_EQ(contents.cells, 2u);
  EXPECT_EQ(contents.trials_per_cell, 3u);
  EXPECT_FALSE(contents.truncated_tail);
  ASSERT_EQ(contents.completed.size(), 1u);
  const sweep::TrialOutcome& loaded = contents.completed.at({1, 2});
  EXPECT_EQ(loaded, outcome);  // bitwise on the doubles via operator==
  std::remove(path.c_str());
}

TEST(Manifest, RejectsADifferentGrid) {
  const std::string path = temp_path("mismatch.manifest");
  const sweep::SweepGrid grid = manifest_grid();
  ManifestWriter::create(path, grid).close();

  sweep::SweepGrid other = manifest_grid();
  other.master_seed = 8;  // different streams => different outcomes
  EXPECT_THROW(load_manifest(path, other), persist_error);
  EXPECT_THROW(ManifestWriter::open_for_append(path, other), persist_error);
  EXPECT_NO_THROW(load_manifest(path, grid));
  std::remove(path.c_str());
}

TEST(Manifest, RotationSegmentsMergeOnLoad) {
  const std::string path = temp_path("rotate.manifest");
  const sweep::SweepGrid grid = manifest_grid();
  {
    ManifestWriter writer = ManifestWriter::create(path, grid);
    writer.set_rotate_bytes(120);  // tiny: a couple of records per segment
    for (std::uint32_t cell = 0; cell < 2; ++cell) {
      for (std::uint32_t trial = 0; trial < 3; ++trial) {
        sweep::TrialOutcome outcome;
        outcome.rounds = static_cast<double>(10 * cell + trial);
        writer.append(cell, trial, outcome);
      }
    }
    writer.close();
  }
  EXPECT_TRUE(std::ifstream(path + ".1").good());
  const ManifestContents contents = load_manifest(path, grid);
  EXPECT_FALSE(contents.truncated_tail);
  ASSERT_EQ(contents.completed.size(), 6u);
  EXPECT_EQ(contents.completed.at({1, 2}).rounds, 12.0);

  // Wrong grid is rejected in rotated chains too.
  sweep::SweepGrid other = manifest_grid();
  other.master_seed = 99;
  EXPECT_THROW(load_manifest(path, other), persist_error);

  // create() reclaims the chain.
  ManifestWriter::create(path, grid).close();
  EXPECT_FALSE(std::ifstream(path + ".1").good());
  std::remove(path.c_str());
}

TEST(Manifest, UnknownHeaderSectionsAreSkipped) {
  // Old-reader/new-file for the manifest header.
  const std::string path = temp_path("future.manifest");
  const sweep::SweepGrid grid = manifest_grid();
  {
    ManifestWriter writer = ManifestWriter::create(path, grid);
    sweep::TrialOutcome outcome;
    outcome.rounds = 5.0;
    writer.append(0, 0, outcome);
    writer.close();
  }
  std::string data = slurp_file(path);
  const std::uint32_t old_len = read_le32(data.data() + 8);
  const std::string records = data.substr(12 + old_len);
  BinWriter extra;
  write_section(extra, 777, "future manifest metadata");
  const std::string sections = data.substr(12, old_len) + extra.buffer();
  BinWriter rebuilt;
  rebuilt.raw(data.data(), 8);
  rebuilt.u32(static_cast<std::uint32_t>(sections.size()));
  rebuilt.raw(sections.data(), sections.size());
  rebuilt.raw(records.data(), records.size());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << rebuilt.buffer();
  }
  const ManifestContents contents = load_manifest(path, grid);
  ASSERT_EQ(contents.completed.size(), 1u);
  EXPECT_EQ(contents.completed.at({0, 0}).rounds, 5.0);
  std::remove(path.c_str());
}

TEST(Manifest, FingerprintCoversOutcomeRelevantFields) {
  const sweep::SweepGrid base = manifest_grid();
  auto differs = [&](auto mutate) {
    sweep::SweepGrid grid = manifest_grid();
    mutate(grid);
    return grid_fingerprint(grid) != grid_fingerprint(base);
  };
  EXPECT_TRUE(differs([](auto& g) { g.scenario.name = "singleton-uniform"; }));
  EXPECT_TRUE(differs([](auto& g) { g.scenario.params["m"] = 5.0; }));
  EXPECT_TRUE(differs([](auto& g) { g.protocols[0].lambda = 0.5; }));
  EXPECT_TRUE(differs([](auto& g) { g.ns.push_back(300); }));
  EXPECT_TRUE(differs([](auto& g) { g.trials = 4; }));
  EXPECT_TRUE(differs([](auto& g) { g.master_seed = 123; }));
  EXPECT_TRUE(differs([](auto& g) { g.dynamics.max_rounds = 60; }));
  EXPECT_TRUE(differs([](auto& g) { g.dynamics.delta = 0.2; }));
}

}  // namespace
}  // namespace cid::persist
