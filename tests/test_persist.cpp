// Unit tests for the persistence substrate (src/persist/): binary I/O
// primitives, checksummed file framing, the game/state codecs, snapshot
// round trips, the event log (including killed-writer tail recovery), and
// the sweep manifest (including grid-fingerprint enforcement). The
// end-to-end kill-and-resume guarantees live in test_resume.cpp and
// test_sweep_resume.cpp; this file pins down the formats those rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "game/builders.hpp"
#include "game/io.hpp"
#include "latency/latency.hpp"
#include "persist/binio.hpp"
#include "persist/codec.hpp"
#include "persist/eventlog.hpp"
#include "persist/manifest.hpp"
#include "persist/snapshot.hpp"
#include "util/rng.hpp"

namespace cid::persist {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Crc32, MatchesReferenceVector) {
  // The canonical CRC-32 check value for "123456789".
  const std::string data = "123456789";
  EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926u);
  // Piecewise checksumming continues from the seed.
  const std::uint32_t part = crc32(data.data(), 4);
  EXPECT_EQ(crc32(data.data() + 4, 5, part), 0xCBF43926u);
}

TEST(BinIo, PrimitiveRoundTrip) {
  BinWriter out;
  out.u8(0xAB);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.i64(-42);
  out.f64(-0.1);  // not exactly representable — must round-trip bit-exactly
  out.str("hello\0world");
  BinReader in(out.buffer(), "test");
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_EQ(in.f64(), -0.1);
  EXPECT_EQ(in.str(), std::string("hello"));
  EXPECT_NO_THROW(in.expect_done());
}

TEST(BinIo, TruncatedReadThrows) {
  BinWriter out;
  out.u32(7);
  BinReader in(out.buffer(), "test");
  EXPECT_THROW(in.u64(), persist_error);
}

TEST(BinIo, FramedFileRoundTripAndCorruptionDetection) {
  const std::string path = temp_path("framed.bin");
  const std::string payload = "some payload bytes";
  write_file_atomic(path, "CIDTEST", 1, payload);
  const FramedFile file = read_file_checked(path, "CIDTEST", 1);
  EXPECT_EQ(file.version, 1);
  EXPECT_EQ(file.payload, payload);

  // Wrong magic and future versions are rejected.
  EXPECT_THROW(read_file_checked(path, "CIDSNAP", 1), persist_error);
  EXPECT_THROW(read_file_checked(path, "CIDTEST", 0), persist_error);

  // A single flipped payload byte must fail the checksum.
  std::string data = slurp_file(path);
  data[10] = static_cast<char>(data[10] ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
  }
  EXPECT_THROW(read_file_checked(path, "CIDTEST", 1), persist_error);
  std::remove(path.c_str());
}

CongestionGame codec_exercise_game() {
  // One latency of every serializable class.
  std::vector<LatencyPtr> fns;
  fns.push_back(make_constant(10.0));
  fns.push_back(make_monomial(2.5, 3.0));
  fns.push_back(make_polynomial({1.0, 0.0, 0.25}));
  fns.push_back(make_exponential(2.0, 0.125));
  fns.push_back(make_scaled(make_monomial(1.5, 2.0), 100));
  std::vector<Strategy> strategies = {{0, 1}, {2, 3}, {1, 4}, {0}};
  return CongestionGame(std::move(fns), std::move(strategies), 400);
}

TEST(Codec, GameRoundTripPreservesTextSerialization) {
  const CongestionGame game = codec_exercise_game();
  BinWriter out;
  encode_game(out, game);
  BinReader in(out.buffer(), "test");
  const CongestionGame decoded = decode_game(in);
  EXPECT_NO_THROW(in.expect_done());
  // The text format is the canonical description; binary decode must agree
  // with it exactly (doubles included — the codec stores IEEE words).
  EXPECT_EQ(serialize_game(decoded), serialize_game(game));
}

TEST(Codec, StateRoundTrip) {
  const CongestionGame game = codec_exercise_game();
  Rng rng(5);
  const State x = State::uniform_random(game, rng);
  BinWriter out;
  encode_state(out, x);
  BinReader in(out.buffer(), "test");
  const State decoded = decode_state(in, game);
  EXPECT_TRUE(decoded == x);
}

TEST(Snapshot, RoundTripPreservesEveryField) {
  const CongestionGame game = codec_exercise_game();
  Rng rng(17);
  const State x = State::uniform_random(game, rng);
  SimConfig config;
  config.protocol = "combined";
  config.lambda = 0.5;
  config.p_explore = 0.25;
  config.nu_cutoff = false;
  config.damping = true;
  config.virtual_agents = 3;
  config.engine = 1;
  config.stop = "deltaeps:0.05,0.1";

  const std::string path = temp_path("roundtrip.snap");
  save_snapshot(make_snapshot(game, x, rng, 12345, config), path);
  const Snapshot loaded = load_snapshot(path);
  EXPECT_EQ(loaded.round, 12345);
  EXPECT_EQ(loaded.config, config);
  EXPECT_EQ(loaded.rng_state, rng.state());
  EXPECT_EQ(serialize_game(loaded.game), serialize_game(game));
  EXPECT_TRUE(loaded.state() == x);
  std::remove(path.c_str());
}

TEST(Snapshot, RestoredRngContinuesTheExactStream) {
  const CongestionGame game = codec_exercise_game();
  Rng rng(99);
  const State x = State::uniform_random(game, rng);
  const std::string path = temp_path("rngcontinue.snap");
  save_snapshot(make_snapshot(game, x, rng, 0, SimConfig{}), path);

  // Continue the original and the restored stream side by side.
  std::vector<std::uint64_t> original;
  for (int i = 0; i < 64; ++i) original.push_back(rng.next_u64());
  Rng restored;
  restored.set_state(load_snapshot(path).rng_state);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(restored.next_u64(), original[i]);
  std::remove(path.c_str());
}

TEST(EventLog, WriteReadRoundTrip) {
  const std::string path = temp_path("roundtrip.elog");
  {
    EventLogWriter writer = EventLogWriter::create(path);
    writer.append(0, std::vector<Migration>{{0, 1, 5}, {2, 0, 3}});
    writer.append(1, std::vector<Migration>{});
    writer.append(2, std::vector<Migration>{{1, 2, 1}});
    writer.close();
  }
  const EventLog log = read_event_log(path);
  EXPECT_EQ(log.version, kEventLogVersion);
  EXPECT_FALSE(log.truncated_tail);
  ASSERT_EQ(log.rounds.size(), 3u);
  EXPECT_EQ(log.rounds[0].round, 0);
  ASSERT_EQ(log.rounds[0].moves.size(), 2u);
  EXPECT_EQ(log.rounds[0].moves[1].from, 2);
  EXPECT_EQ(log.rounds[0].moves[1].count, 3);
  EXPECT_TRUE(log.rounds[1].moves.empty());
  EXPECT_EQ(log.rounds[2].round, 2);
  std::remove(path.c_str());
}

TEST(EventLog, DamagedTailIsDetectedAndDroppedOnAppend) {
  const std::string path = temp_path("damaged.elog");
  {
    EventLogWriter writer = EventLogWriter::create(path);
    writer.append(0, std::vector<Migration>{{0, 1, 2}});
    writer.append(1, std::vector<Migration>{{1, 0, 2}});
    writer.close();
  }
  {  // Simulate a killed writer: half a record of garbage at the end.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "garbage!";
  }
  const EventLog damaged = read_event_log(path);
  EXPECT_TRUE(damaged.truncated_tail);
  ASSERT_EQ(damaged.rounds.size(), 2u);

  // Appending at round 2 truncates the garbage and continues cleanly.
  {
    EventLogWriter writer = EventLogWriter::open_for_append(path, 2);
    writer.append(2, std::vector<Migration>{{0, 1, 1}});
    writer.close();
  }
  const EventLog repaired = read_event_log(path);
  EXPECT_FALSE(repaired.truncated_tail);
  ASSERT_EQ(repaired.rounds.size(), 3u);
  EXPECT_EQ(repaired.rounds[2].round, 2);
  std::remove(path.c_str());
}

TEST(EventLog, AppendDropsRecordsAtOrBeyondTheResumeRound) {
  const std::string path = temp_path("truncate.elog");
  {
    EventLogWriter writer = EventLogWriter::create(path);
    for (std::int64_t r = 0; r < 10; ++r) {
      writer.append(r, std::vector<Migration>{{0, 1, r + 1}});
    }
    writer.close();
  }
  // Resume from a snapshot taken at round 6: rounds 6..9 must go.
  {
    EventLogWriter writer = EventLogWriter::open_for_append(path, 6);
    writer.append(6, std::vector<Migration>{{1, 0, 100}});
    writer.close();
  }
  const EventLog log = read_event_log(path);
  ASSERT_EQ(log.rounds.size(), 7u);
  EXPECT_EQ(log.rounds[5].moves[0].count, 6);
  EXPECT_EQ(log.rounds[6].moves[0].count, 100);
  std::remove(path.c_str());
}

sweep::SweepGrid manifest_grid() {
  sweep::SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 4.0}};
  grid.protocols = sweep::parse_protocol_list("imitation");
  grid.ns = {100, 200};
  grid.trials = 3;
  grid.master_seed = 7;
  grid.dynamics.max_rounds = 50;
  return grid;
}

TEST(Manifest, AppendLoadRoundTripIsBitExact) {
  const std::string path = temp_path("roundtrip.manifest");
  const sweep::SweepGrid grid = manifest_grid();
  sweep::TrialOutcome outcome;
  outcome.rounds = 17.0;
  outcome.converged = true;
  outcome.movers = 123456789012345ll;
  outcome.potential = 0.1 + 0.2;  // a double with a messy bit pattern
  outcome.social_cost = -3.25;
  {
    ManifestWriter writer = ManifestWriter::create(path, grid);
    writer.append(1, 2, outcome);
    writer.close();
  }
  const ManifestContents contents = load_manifest(path, grid);
  EXPECT_EQ(contents.fingerprint, grid_fingerprint(grid));
  EXPECT_EQ(contents.cells, 2u);
  EXPECT_EQ(contents.trials_per_cell, 3u);
  EXPECT_FALSE(contents.truncated_tail);
  ASSERT_EQ(contents.completed.size(), 1u);
  const sweep::TrialOutcome& loaded = contents.completed.at({1, 2});
  EXPECT_EQ(loaded, outcome);  // bitwise on the doubles via operator==
  std::remove(path.c_str());
}

TEST(Manifest, RejectsADifferentGrid) {
  const std::string path = temp_path("mismatch.manifest");
  const sweep::SweepGrid grid = manifest_grid();
  ManifestWriter::create(path, grid).close();

  sweep::SweepGrid other = manifest_grid();
  other.master_seed = 8;  // different streams => different outcomes
  EXPECT_THROW(load_manifest(path, other), persist_error);
  EXPECT_THROW(ManifestWriter::open_for_append(path, other), persist_error);
  EXPECT_NO_THROW(load_manifest(path, grid));
  std::remove(path.c_str());
}

TEST(Manifest, FingerprintCoversOutcomeRelevantFields) {
  const sweep::SweepGrid base = manifest_grid();
  auto differs = [&](auto mutate) {
    sweep::SweepGrid grid = manifest_grid();
    mutate(grid);
    return grid_fingerprint(grid) != grid_fingerprint(base);
  };
  EXPECT_TRUE(differs([](auto& g) { g.scenario.name = "singleton-uniform"; }));
  EXPECT_TRUE(differs([](auto& g) { g.scenario.params["m"] = 5.0; }));
  EXPECT_TRUE(differs([](auto& g) { g.protocols[0].lambda = 0.5; }));
  EXPECT_TRUE(differs([](auto& g) { g.ns.push_back(300); }));
  EXPECT_TRUE(differs([](auto& g) { g.trials = 4; }));
  EXPECT_TRUE(differs([](auto& g) { g.master_seed = 123; }));
  EXPECT_TRUE(differs([](auto& g) { g.dynamics.max_rounds = 60; }));
  EXPECT_TRUE(differs([](auto& g) { g.dynamics.delta = 0.2; }));
}

}  // namespace
}  // namespace cid::persist
