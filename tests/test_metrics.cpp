// Tests for the observability layer (src/obs/). The load-bearing contract
// is ZERO PERTURBATION: metering a run consumes no RNG and changes no
// output — trial outcomes, final states, RNG stream positions, and every
// persisted byte are bitwise identical with metrics on and off, at every
// row-thread count, across all scenario families, through checkpoint and
// resume. Everything else (registry semantics, sinks, progress math) is
// plumbing around that invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dynamics/engine.hpp"
#include "dynamics/equilibrium.hpp"
#include "game/builders.hpp"
#include "game/state.hpp"
#include "persist/binio.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/sink.hpp"
#include "protocols/imitation.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- Registry semantics -----------------------------------------------------

TEST(MetricsRegistry, CounterRegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  const auto a = reg.counter("x");
  const auto b = reg.counter("y");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, reg.counter("x"));
  reg.add(a, 3);
  reg.add(a, 4);
  EXPECT_EQ(reg.value(a), 7);
  EXPECT_EQ(reg.value(b), 0);
}

TEST(MetricsRegistry, HistogramRejectsBadBounds) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("h", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(
      reg.histogram("h", {1.0, std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(MetricsRegistry, HistogramFirstRegistrationWins) {
  obs::MetricsRegistry reg;
  const auto a = reg.histogram("h", {1.0, 2.0});
  const auto b = reg.histogram("h", {5.0});  // ignored bounds
  EXPECT_EQ(a, b);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].bounds, (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, HistogramBucketEdges) {
  obs::MetricsRegistry reg;
  const auto h = reg.histogram("h", {1.0, 2.0, 4.0});
  // Bucket rule: first bucket with value <= bound; past the last bound the
  // observation lands in the overflow bucket.
  reg.observe(h, 0.5);   // bucket 0
  reg.observe(h, 1.0);   // bucket 0 (inclusive upper bound)
  reg.observe(h, 1.5);   // bucket 1
  reg.observe(h, 4.0);   // bucket 2
  reg.observe(h, 4.01);  // overflow
  reg.observe(h, -3.0);  // bucket 0
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramValue& v = snap.histograms[0];
  ASSERT_EQ(v.buckets.size(), 4u);  // bounds + overflow
  EXPECT_EQ(v.buckets[0], 3);
  EXPECT_EQ(v.buckets[1], 1);
  EXPECT_EQ(v.buckets[2], 1);
  EXPECT_EQ(v.buckets[3], 1);
  EXPECT_EQ(v.count, 6);
  EXPECT_DOUBLE_EQ(v.sum, 0.5 + 1.0 + 1.5 + 4.0 + 4.01 - 3.0);
  // NaN falls through every bound into overflow (and poisons the sum,
  // which is why callers feed histograms counts, not derived ratios).
  reg.observe(h, std::nan(""));
  snap = reg.snapshot();
  EXPECT_EQ(snap.histograms[0].buckets[3], 2);
  EXPECT_EQ(snap.histograms[0].count, 7);
}

TEST(MetricsRegistry, ResetKeepsRegistrations) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto h = reg.histogram("h", {1.0});
  reg.add(c, 5);
  reg.observe(h, 0.5);
  reg.reset_values();
  EXPECT_EQ(reg.value(c), 0);
  EXPECT_EQ(reg.counter("c"), c);
  EXPECT_EQ(reg.histogram("h", {9.0}), h);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.histograms[0].count, 0);
  EXPECT_EQ(snap.histograms[0].buckets[0], 0);
}

TEST(MetricsRegistry, MergeEngineUsesCanonicalNames) {
  obs::EngineMetrics m;
  m.rounds = 7;
  m.rows_pruned = 3;
  obs::MetricsRegistry reg;
  reg.merge_engine("", m);
  reg.merge_engine("sweep.", m);
  const auto snap = reg.snapshot();
  auto value_of = [&](const std::string& name) -> std::int64_t {
    for (const obs::CounterValue& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return -1;
  };
  EXPECT_EQ(value_of("engine.rounds"), 7);
  EXPECT_EQ(value_of("engine.rows_pruned"), 3);
  EXPECT_EQ(value_of("sweep.engine.rounds"), 7);
}

TEST(EngineMetrics, MergeSumsEveryField) {
  obs::EngineMetrics a, b;
  a.rounds = 1;
  a.draw_ns = 10;
  b.rounds = 2;
  b.draw_ns = 5;
  b.rows_filled = 4;
  a.merge(b);
  EXPECT_EQ(a.rounds, 3);
  EXPECT_EQ(a.draw_ns, 15);
  EXPECT_EQ(a.rows_filled, 4);
  // The (name, value) view covers every field exactly once, in
  // declaration order — the single naming authority all sinks share.
  const auto pairs = obs::engine_counters(a);
  ASSERT_EQ(pairs.size(), 9u);
  EXPECT_EQ(pairs.front().first, "engine.rounds");
  EXPECT_EQ(pairs.front().second, 3);
  EXPECT_EQ(pairs.back().first, "engine.stop_check_ns");
}

// ---- Zero perturbation: the engine ------------------------------------------

struct EngineRun {
  RunResult result;
  State state;
  std::array<std::uint64_t, 4> rng_state;
};

EngineRun run_engine(EngineMode mode, int row_threads,
                     obs::EngineMetrics* metrics) {
  auto game = make_uniform_links_game(6, make_linear(1.0), 400);
  Rng rng(1234);
  State x = State::uniform_random(game, rng);
  ImitationProtocol protocol;
  RunOptions options;
  options.max_rounds = 60;
  options.mode = mode;
  options.row_threads = row_threads;
  options.metrics = metrics;
  auto stop = [](const CongestionGame& g, const State& s, std::int64_t) {
    return is_imitation_stable(g, s, g.nu());
  };
  const RunResult result = run_dynamics(game, x, protocol, rng, options, stop);
  return {result, std::move(x), rng.state()};
}

TEST(MetricsZeroPerturbation, EngineOutputsIdenticalOnAndOff) {
  for (const EngineMode mode :
       {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    for (const int row_threads : {1, 2, 4}) {
      const EngineRun off = run_engine(mode, row_threads, nullptr);
      obs::EngineMetrics metrics;
      const EngineRun on = run_engine(mode, row_threads, &metrics);
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " row_threads=" + std::to_string(row_threads));
      EXPECT_EQ(on.result.rounds, off.result.rounds);
      EXPECT_EQ(on.result.converged, off.result.converged);
      EXPECT_EQ(on.result.total_movers, off.result.total_movers);
      EXPECT_EQ(on.result.latency_evals, off.result.latency_evals);
      EXPECT_EQ(on.state, off.state);
      // The strongest form of "zero RNG": the generator is at the exact
      // same stream position after a metered run.
      EXPECT_EQ(on.rng_state, off.rng_state);
      if (obs::kMetricsCompiled) {
        EXPECT_EQ(metrics.rounds, on.result.rounds);
        EXPECT_GT(metrics.rows_filled, 0);
        EXPECT_GT(metrics.stop_checks, 0);
      } else {
        EXPECT_EQ(metrics, obs::EngineMetrics{});
      }
    }
  }
}

TEST(MetricsCounters, UncappedRunCountsExactly) {
  auto game = make_uniform_links_game(4, make_linear(1.0), 100);
  Rng rng(7);
  State x = State::uniform_random(game, rng);
  ImitationProtocol protocol;
  obs::EngineMetrics metrics;
  RunOptions options;
  options.max_rounds = 25;
  options.metrics = &metrics;
  // No stop predicate: exactly max_rounds rounds, zero stop checks —
  // every counter is hand-computable.
  const RunResult result =
      run_dynamics(game, x, protocol, rng, options, nullptr);
  EXPECT_EQ(result.rounds, 25);
  EXPECT_FALSE(result.converged);
  if (obs::kMetricsCompiled) {
    EXPECT_EQ(metrics.rounds, 25);
    EXPECT_EQ(metrics.stop_checks, 0);
    EXPECT_EQ(metrics.stop_check_ns, 0);
    EXPECT_GT(metrics.rows_filled + metrics.rows_pruned, 0);
    EXPECT_GT(metrics.row_fill_ns + metrics.draw_ns, 0);
  } else {
    EXPECT_EQ(metrics, obs::EngineMetrics{});
  }
}

// ---- Zero perturbation: scenario families and the sweep ---------------------

void expect_outcomes_identical(const sweep::TrialOutcome& a,
                               const sweep::TrialOutcome& b) {
  // operator== compares every field exactly — bitwise for the doubles.
  EXPECT_EQ(a, b);
}

TEST(MetricsZeroPerturbation, AllScenarioFamiliesIdenticalOnAndOff) {
  struct Case {
    const char* scenario;
    std::int64_t n;
  };
  // One representative per family: symmetric singleton, asymmetric
  // multicommodity, and the round-less sequential threshold family.
  for (const Case c : {Case{"singleton-uniform", 60},
                       Case{"multicommodity", 48},
                       Case{"threshold-lb", 9}}) {
    SCOPED_TRACE(c.scenario);
    sweep::ScenarioSpec spec;
    spec.name = c.scenario;
    const auto instance = sweep::make_scenario(spec, c.n);
    sweep::ProtocolSpec protocol;
    sweep::DynamicsConfig dynamics;
    dynamics.max_rounds = 300;

    Rng rng_off(5);
    const sweep::TrialOutcome off =
        instance->run_trial(protocol, dynamics, rng_off);

    dynamics.collect_metrics = true;
    sweep::TrialStats stats;
    Rng rng_on(5);
    const sweep::TrialOutcome on =
        instance->run_trial(protocol, dynamics, rng_on, &stats);

    expect_outcomes_identical(on, off);
    EXPECT_EQ(rng_on.state(), rng_off.state());
    // Per-trial counters: rounds/steps executed match the outcome, and
    // every family meters its latency evaluations (the threshold family
    // through its sequential sweeps — ISSUE 6 satellite fix).
    EXPECT_EQ(stats.ran_rounds, static_cast<std::int64_t>(on.rounds));
    if (obs::kMetricsCompiled) {
      EXPECT_GT(stats.latency_evals, 0);
    }
  }
}

TEST(MetricsZeroPerturbation, CheckpointedTrialAndSnapshotBytesIdentical) {
  sweep::ScenarioSpec spec;
  spec.name = "singleton-uniform";
  const auto instance = sweep::make_scenario(spec, 80);
  sweep::ProtocolSpec protocol;
  sweep::DynamicsConfig dynamics;
  dynamics.max_rounds = 120;

  const std::string path_off = temp_path("cid_metrics_ckpt_off.snap");
  const std::string path_on = temp_path("cid_metrics_ckpt_on.snap");

  Rng rng_off(11);
  const sweep::TrialOutcome off = instance->run_trial_checkpointed(
      protocol, dynamics, rng_off, {path_off, 0});

  dynamics.collect_metrics = true;
  Rng rng_on(11);
  const sweep::TrialOutcome on = instance->run_trial_checkpointed(
      protocol, dynamics, rng_on, {path_on, 0});

  expect_outcomes_identical(on, off);
  EXPECT_EQ(rng_on.state(), rng_off.state());
  // The persisted artifact itself is byte-identical: metering never
  // leaks into snapshots.
  const std::string bytes_off = persist::slurp_file(path_off);
  const std::string bytes_on = persist::slurp_file(path_on);
  EXPECT_EQ(bytes_on, bytes_off);

  // And a kill/resume path stays bit-exact with metrics on: resume from
  // the metered run's snapshot reproduces the plain run's outcome.
  const sweep::TrialOutcome resumed =
      instance->resume_trial(protocol, dynamics, path_on);
  expect_outcomes_identical(resumed, off);

  std::remove(path_off.c_str());
  std::remove(path_on.c_str());
}

TEST(MetricsSweep, CollectMetricsChangesNoOutcomeAndFillsStats) {
  sweep::SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 4.0}};
  grid.protocols = sweep::parse_protocol_list("imitation");
  grid.ns = {100, 200};
  grid.trials = 4;
  grid.master_seed = 17;
  grid.dynamics.max_rounds = 500;

  sweep::SweepOptions options;
  options.threads = 2;
  const sweep::SweepResult off = sweep::run_sweep(grid, options);

  grid.dynamics.collect_metrics = true;
  const sweep::SweepResult on = sweep::run_sweep(grid, options);

  ASSERT_EQ(on.trials.size(), off.trials.size());
  for (std::size_t i = 0; i < on.trials.size(); ++i) {
    expect_outcomes_identical(on.trials[i].outcome, off.trials[i].outcome);
  }
  ASSERT_EQ(on.stats.size(), on.trials.size());

  // The merged result is exactly the sum of the per-trial stats.
  obs::EngineMetrics merged;
  std::int64_t ran_rounds = 0;
  for (const sweep::TrialStats& stats : on.stats) {
    merged.merge(stats.engine);
    ran_rounds += stats.ran_rounds;
  }
  EXPECT_EQ(on.engine, merged);
  EXPECT_EQ(on.ran_rounds, ran_rounds);
  if (obs::kMetricsCompiled) {
    EXPECT_EQ(on.engine.rounds, on.ran_rounds);
    EXPECT_GT(on.engine.rows_filled, 0);
  } else {
    EXPECT_EQ(on.engine, obs::EngineMetrics{});
  }
}

// ---- Sinks ------------------------------------------------------------------

obs::MetricsSnapshot sample_snapshot() {
  obs::MetricsRegistry reg;
  reg.add_named("b.counter", 2);
  reg.add_named("a.counter", 1);
  const auto h = reg.histogram("lat\"ency", {1.0, 10.0});
  reg.observe(h, 0.5);
  reg.observe(h, 5.0);
  reg.observe(h, 50.0);
  return reg.snapshot();
}

TEST(MetricsSinks, JsonlSchemaRoundTrips) {
  const std::string path = temp_path("cid_metrics_sink.jsonl");
  {
    obs::JsonlSink sink(path);
    obs::JsonObject row = sink.record("trial");
    row.num("cell", std::int64_t{3}).str("protocol", "imi\"tation");
    sink.write_line(std::move(row));
    sink.write(sample_snapshot());
    sink.write(sample_snapshot());
    EXPECT_GT(sink.bytes_written(), 0u);
    sink.close();
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  // Every record leads with the schema preamble.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("{\"metrics_version\":1,\"kind\":", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"kind\":\"trial\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"protocol\":\"imi\\\"tation\""),
            std::string::npos);
  // Snapshot records carry a monotonic seq, sorted counters, histograms.
  EXPECT_NE(lines[1].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"a.counter\":1,\"b.counter\":2"),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"bounds\":[1,10]"), std::string::npos);
  EXPECT_NE(lines[1].find("\"buckets\":[1,1,1]"), std::string::npos);
  EXPECT_NE(lines[1].find("\"count\":3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsSinks, JsonlThrowsOnUnwritablePath) {
  EXPECT_THROW(obs::JsonlSink("/nonexistent-dir/metrics.jsonl"),
               std::runtime_error);
}

TEST(MetricsSinks, PrometheusExposition) {
  const std::string text = obs::prometheus_text(sample_snapshot());
  EXPECT_NE(text.find("# TYPE cid_a_counter counter\ncid_a_counter 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cid_lat_ency histogram"), std::string::npos);
  // Buckets are CUMULATIVE in the exposition format, ending at +Inf ==
  // count.
  EXPECT_NE(text.find("cid_lat_ency_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("cid_lat_ency_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cid_lat_ency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cid_lat_ency_count 3"), std::string::npos);
}

TEST(MetricsSinks, JsonEscape) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

// ---- Progress meter ---------------------------------------------------------

TEST(Progress, MeterAggregatesPerKeyAndFormats) {
  obs::ProgressMeter meter({"imitation n=100", "imitation n=200"}, {2, 3});
  meter.on_trial_done(0, 10);
  meter.on_trial_done(1, 30);
  meter.on_trial_done(1, 20);
  const obs::ProgressSnapshot snap = meter.snapshot();
  EXPECT_EQ(snap.trials_done, 3);
  EXPECT_EQ(snap.trials_total, 5);
  EXPECT_EQ(snap.rounds_done, 60);
  ASSERT_EQ(snap.keys.size(), 2u);
  EXPECT_EQ(snap.keys[0].done, 1);
  EXPECT_EQ(snap.keys[0].total, 2);
  EXPECT_EQ(snap.keys[1].done, 2);
  const std::string line = obs::format_progress(snap);
  EXPECT_NE(line.find("3/5 trials"), std::string::npos);
  EXPECT_NE(line.find("imitation n=100 1/2"), std::string::npos);
  if (obs::kMetricsCompiled) {
    EXPECT_GE(snap.elapsed_seconds, 0.0);
  }
}

// ---- Persist I/O counters ---------------------------------------------------

TEST(PersistIo, CountersAccumulateThroughOneCodePath) {
  const obs::PersistIoTotals before = obs::persist_io_totals();
  obs::record_persist_write(100, /*fsyncs=*/2);
  obs::record_persist_write(28, /*fsyncs=*/0);
  obs::record_persist_flush();
  const obs::PersistIoTotals after = obs::persist_io_totals();
  if (obs::kMetricsCompiled) {
    EXPECT_EQ(after.bytes_written - before.bytes_written, 128);
    EXPECT_EQ(after.writes - before.writes, 2);
    EXPECT_EQ(after.fsyncs - before.fsyncs, 2);
    EXPECT_EQ(after.fflushes - before.fflushes, 1);
  } else {
    EXPECT_EQ(after.bytes_written, 0);
    EXPECT_EQ(after.writes, 0);
  }
}

}  // namespace
}  // namespace cid
