// Tests for the Rosenthal potential machinery, including the paper's
// Lemma 1 decomposition (ΔΦ ≤ Σ V_PQ + Σ F_e) verified as a property over
// random migration vectors — this is the content of the paper's Figure 1.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "game/builders.hpp"
#include "game/potential.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

CongestionGame braess_game(std::int64_t n) {
  const auto net = make_braess_network();
  std::vector<LatencyPtr> fns{make_linear(1.0), make_polynomial({0.0, 2.0}),
                              make_monomial(1.0, 2.0), make_linear(1.0),
                              make_affine(1.0, 3.0)};
  return make_network_game(net, std::move(fns), n);
}

TEST(Potential, RosenthalIdentitySingleMove) {
  // The defining property of Rosenthal's potential: a unilateral move P→Q
  // changes Φ by exactly the mover's latency change,
  // Φ(x+1_Q−1_P) − Φ(x) = ℓ_Q(x+1_Q−1_P) − ℓ_P(x).
  const auto game = braess_game(12);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    State x = State::uniform_random(game, rng);
    const auto support = x.support();
    const StrategyId p =
        support[static_cast<std::size_t>(rng.uniform_int(support.size()))];
    const auto q = static_cast<StrategyId>(
        rng.uniform_int(static_cast<std::uint64_t>(game.num_strategies())));
    if (q == p) continue;
    const std::array<Migration, 1> mv{Migration{p, q, 1}};
    const double dphi = potential_gain(game, x, mv);
    const double latency_change =
        game.expost_latency(x, p, q) - game.strategy_latency(x, p);
    EXPECT_NEAR(dphi, latency_change, 1e-9);
    // Cross-check against the O(n·m) recomputation.
    State y = x;
    y.apply(game, mv);
    EXPECT_NEAR(dphi, game.potential(y) - game.potential(x), 1e-9);
  }
}

TEST(Potential, GainMatchesRecomputationForBatches) {
  const auto game = braess_game(30);
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    State x = State::uniform_random(game, rng);
    // Random feasible batch.
    std::vector<Migration> moves;
    for (StrategyId p = 0; p < game.num_strategies(); ++p) {
      std::int64_t budget = x.count(p);
      for (StrategyId q = 0; q < game.num_strategies(); ++q) {
        if (q == p || budget == 0) continue;
        const std::int64_t k =
            rng.binomial(budget, 0.3);
        if (k > 0) {
          moves.push_back(Migration{p, q, k});
          budget -= k;
        }
      }
    }
    const double dphi = potential_gain(game, x, moves);
    State y = x;
    y.apply(game, moves);
    EXPECT_NEAR(dphi, game.potential(y) - game.potential(x),
                1e-8 * (1.0 + std::abs(dphi)));
  }
}

TEST(Potential, Lemma1UpperBoundHoldsOnRandomMigrations) {
  // ΔΦ ≤ Σ V_PQ + Σ F_e for *arbitrary* migration vectors (Lemma 1 is
  // protocol-independent).
  const auto game = braess_game(24);
  Rng rng(11);
  int nontrivial = 0;
  for (int trial = 0; trial < 200; ++trial) {
    State x = State::uniform_random(game, rng);
    std::vector<Migration> moves;
    for (StrategyId p = 0; p < game.num_strategies(); ++p) {
      std::int64_t budget = x.count(p);
      for (StrategyId q = 0; q < game.num_strategies(); ++q) {
        if (q == p || budget == 0) continue;
        const std::int64_t k = rng.binomial(budget, rng.uniform() * 0.5);
        if (k > 0) {
          moves.push_back(Migration{p, q, k});
          budget -= k;
        }
      }
    }
    if (moves.empty()) continue;
    ++nontrivial;
    const double dphi = potential_gain(game, x, moves);
    const double vpq = virtual_potential_gain(game, x, moves);
    const double err = concurrency_error_term(game, x, moves);
    EXPECT_LE(dphi, vpq + err + 1e-9)
        << "Lemma 1 violated on trial " << trial;
    EXPECT_GE(err, -1e-12) << "error terms are sums of non-negative steps";
  }
  EXPECT_GT(nontrivial, 150);
}

TEST(Potential, VirtualGainIsExactForSingleMover) {
  // With one mover the error term vanishes and V_PQ == ΔΦ.
  const auto game = braess_game(10);
  Rng rng(13);
  const State x = State::uniform_random(game, rng);
  for (StrategyId p : x.support()) {
    for (StrategyId q = 0; q < game.num_strategies(); ++q) {
      if (q == p) continue;
      const std::array<Migration, 1> mv{Migration{p, q, 1}};
      EXPECT_NEAR(virtual_potential_gain(game, x, mv),
                  potential_gain(game, x, mv), 1e-9);
      EXPECT_NEAR(concurrency_error_term(game, x, mv), 0.0, 1e-12);
    }
  }
}

TEST(Potential, ErrorTermZeroWhenFlowsCancel) {
  // A perfect swap leaves every congestion unchanged: F_e = 0 and
  // ΔΦ = 0... but V_PQ can be negative; Lemma 1 still holds.
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {5, 5});
  const std::array<Migration, 2> moves{Migration{0, 1, 2},
                                       Migration{1, 0, 2}};
  EXPECT_DOUBLE_EQ(concurrency_error_term(game, x, moves), 0.0);
  EXPECT_DOUBLE_EQ(potential_gain(game, x, moves), 0.0);
}

TEST(PotentialTracker, StaysExactAcrossApplications) {
  const auto game = braess_game(20);
  Rng rng(17);
  State x = State::uniform_random(game, rng);
  PotentialTracker tracker(game, x);
  EXPECT_NEAR(tracker.value(), game.potential(x), 1e-9);
  for (int round = 0; round < 20; ++round) {
    std::vector<Migration> moves;
    for (StrategyId p : x.support()) {
      const StrategyId q =
          static_cast<StrategyId>((p + 1) % game.num_strategies());
      const std::int64_t k = rng.binomial(x.count(p), 0.2);
      if (k > 0) moves.push_back(Migration{p, q, k});
    }
    tracker.apply(game, x, moves);
    x.apply(game, moves);
    ASSERT_NEAR(tracker.value(), game.potential(x),
                1e-7 * (1.0 + tracker.value()));
  }
  tracker.resync(game, x);
  EXPECT_NEAR(tracker.value(), game.potential(x), 1e-12);
}

}  // namespace
}  // namespace cid
