#include <gtest/gtest.h>

#include <algorithm>

#include "game/builders.hpp"
#include "game/state.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

TEST(Builders, UniformLinksShareOneFunctionObject) {
  const auto fn = make_linear(2.0);
  const auto game = make_uniform_links_game(4, fn, 8);
  for (Resource e = 0; e < 4; ++e) {
    EXPECT_EQ(&game.latency(e), fn.get());
  }
  EXPECT_TRUE(game.is_singleton());
}

TEST(Builders, OvershootExampleShape) {
  const auto game = make_overshoot_example(100.0, 2.0, 3.0, 50);
  ASSERT_EQ(game.num_resources(), 2);
  EXPECT_DOUBLE_EQ(game.latency(0).value(17.0), 100.0);   // constant c
  EXPECT_DOUBLE_EQ(game.latency(1).value(2.0), 16.0);     // 2*x^3
  EXPECT_DOUBLE_EQ(game.elasticity(), 3.0);
}

TEST(Builders, BraessStrategiesAreTheThreePaths) {
  const auto net = make_braess_network();
  std::vector<LatencyPtr> fns(5, make_linear(1.0));
  const auto game = make_network_game(net, std::move(fns), 6);
  ASSERT_EQ(game.num_strategies(), 3);
  // Edge ids: 0 s->u, 1 s->v, 2 u->t, 3 v->t, 4 u->v. Expected path edge
  // sets (sorted): {0,2}, {1,3}, {0,3,4}.
  std::vector<Strategy> expected{{0, 2}, {0, 3, 4}, {1, 3}};
  std::vector<Strategy> actual;
  for (StrategyId p = 0; p < 3; ++p) actual.push_back(game.strategy(p));
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(actual, expected);
}

TEST(Builders, NetworkGameCongestionMatchesPathUsage) {
  const auto net = make_braess_network();
  std::vector<LatencyPtr> fns(5, make_linear(1.0));
  const auto game = make_network_game(net, std::move(fns), 9);
  // Find the bridge path (3 edges) and load everyone on it.
  StrategyId bridge = -1;
  for (StrategyId p = 0; p < game.num_strategies(); ++p) {
    if (game.strategy(p).size() == 3) bridge = p;
  }
  ASSERT_GE(bridge, 0);
  const State x = State::all_on(game, bridge);
  for (Resource e : game.strategy(bridge)) {
    EXPECT_EQ(x.congestion(e), 9);
  }
  std::int64_t total_on_edges = 0;
  for (Resource e = 0; e < 5; ++e) total_on_edges += x.congestion(e);
  EXPECT_EQ(total_on_edges, 27);  // 9 players x 3 edges
}

TEST(Builders, SeriesParallelGamesAreWellFormed) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto net = make_series_parallel(12, rng);
    std::vector<LatencyPtr> fns;
    for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
      fns.push_back(make_linear(1.0 + 0.1 * static_cast<double>(e)));
    }
    const auto game = make_network_game(net, std::move(fns), 20);
    EXPECT_GE(game.num_strategies(), 1);
    // Every strategy must be a genuine s-t path: starts at source's
    // out-edges and is connected; we verify via congestion consistency of
    // an arbitrary state instead of re-walking the graph.
    Rng r2(7);
    const State x = State::uniform_random(game, r2);
    x.check_consistent(game);
  }
}

TEST(Builders, NetworkGamePathCapApplies) {
  const auto net = make_layered_network(4, 4);  // 256 paths
  std::vector<LatencyPtr> fns;
  for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
    fns.push_back(make_linear(1.0));
  }
  PathEnumerationOptions opts;
  opts.max_paths = 100;
  EXPECT_THROW(make_network_game(net, std::move(fns), 5, opts),
               invariant_violation);
}

}  // namespace
}  // namespace cid
