// Theorem 6 machinery tests.
//
// The load-bearing checks are the exact correspondences:
//   (1) quadratic threshold game improvements  ⇔  MaxCut improving flips;
//   (2) threshold-game potential change = −(cut-value change)/2;
//   (3) tripled-game imitation dynamics simulate base-game best-response
//       flips one-for-one, with the three copies never coalescing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lowerbound/maxcut.hpp"
#include "lowerbound/threshold_game.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

MaxCutInstance triangle() {
  // Weighted triangle: w01=1, w02=2, w12=4.
  return MaxCutInstance({{0.0, 1.0, 2.0},
                         {1.0, 0.0, 4.0},
                         {2.0, 4.0, 0.0}});
}

TEST(MaxCut, CutValueAndFlipGain) {
  const auto inst = triangle();
  EXPECT_DOUBLE_EQ(inst.cut_value(0b000), 0.0);
  EXPECT_DOUBLE_EQ(inst.cut_value(0b001), 3.0);   // node 0 vs {1,2}
  EXPECT_DOUBLE_EQ(inst.cut_value(0b011), 6.0);   // {0,1} vs {2}
  // Gain of flipping node 2 out of 000: joins cut edges w02+w12 = 6.
  EXPECT_DOUBLE_EQ(inst.flip_gain(0b000, 2), 6.0);
  // Consistency: gain == cut(after) − cut(before) everywhere.
  for (std::uint32_t cut = 0; cut < 8; ++cut) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(inst.flip_gain(cut, i),
                  inst.cut_value(cut ^ (1u << i)) - inst.cut_value(cut),
                  1e-12);
    }
  }
}

TEST(MaxCut, ValidatesInput) {
  EXPECT_THROW(MaxCutInstance({{0.0, 1.0}, {2.0, 0.0}}),
               invariant_violation);  // asymmetric
  EXPECT_THROW(
      MaxCutInstance(std::vector<std::vector<double>>{{1.0}}),
      invariant_violation);  // diagonal
  EXPECT_THROW(MaxCutInstance({{0.0, -1.0}, {-1.0, 0.0}}),
               invariant_violation);  // negative
}

TEST(MaxCut, LocalSearchReachesLocalOptimum) {
  Rng rng(1);
  const auto inst = MaxCutInstance::random(10, 0.5, 16, rng);
  for (PivotRule rule :
       {PivotRule::kFirstImproving, PivotRule::kBestImproving,
        PivotRule::kWorstImproving, PivotRule::kRandomImproving}) {
    Rng r2(2);
    const auto run = run_flip_local_search(inst, 0, rule, r2, 100000);
    EXPECT_TRUE(run.converged);
    EXPECT_TRUE(inst.is_local_opt(run.final_cut));
  }
}

TEST(MaxCut, CutValueStrictlyIncreasesAlongSearch) {
  Rng rng(3);
  const auto inst = MaxCutInstance::random(8, 0.6, 8, rng);
  std::uint32_t cut = 0;
  double value = inst.cut_value(cut);
  for (int step = 0; step < 1000; ++step) {
    const auto improving = inst.improving_flips(cut);
    if (improving.empty()) break;
    cut ^= (1u << improving.front());
    const double next = inst.cut_value(cut);
    EXPECT_GT(next, value);
    value = next;
  }
  EXPECT_TRUE(inst.is_local_opt(cut));
}

TEST(MaxCut, CertifiersAgreeOnTinyInstances) {
  // BFS shortest <= any pivot-rule run <= DP longest, and a local optimum
  // has shortest == longest == 0.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = MaxCutInstance::random(7, 0.7, 8, rng);
    const std::uint32_t start = static_cast<std::uint32_t>(
        rng.uniform_int(1u << 7));
    const auto shortest = bfs_shortest_to_local_opt(inst, start);
    const auto longest = dp_longest_improvement_path(inst, start);
    EXPECT_LE(shortest, longest);
    Rng r2(trial);
    const auto run = run_flip_local_search(
        inst, start, PivotRule::kFirstImproving, r2, 100000);
    EXPECT_GE(run.steps, shortest);
    EXPECT_LE(run.steps, longest);
    if (inst.is_local_opt(start)) {
      EXPECT_EQ(shortest, 0);
      EXPECT_EQ(longest, 0);
    }
  }
}

TEST(QuadraticThreshold, ImprovementsMatchMaxCutFlips) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = MaxCutInstance::random(6, 0.8, 10, rng);
    const auto qt = make_quadratic_threshold(inst);
    const auto cut = static_cast<std::uint32_t>(rng.uniform_int(1u << 6));
    const auto state = state_from_cut(qt.game, cut);
    const auto improving_players = qt.game.improving_players(state);
    const auto improving_flips = inst.improving_flips(cut);
    EXPECT_EQ(improving_players, improving_flips)
        << "cut=" << cut << " trial=" << trial;
    EXPECT_EQ(qt.game.is_stable(state), inst.is_local_opt(cut));
  }
}

TEST(QuadraticThreshold, PotentialTracksCutValue) {
  // Rosenthal potential change of a flip = −(cut gain)/2 — the reduction
  // is an exact (scaled) potential embedding.
  Rng rng(9);
  const auto inst = MaxCutInstance::random(6, 0.8, 10, rng);
  const auto qt = make_quadratic_threshold(inst);
  for (int trial = 0; trial < 20; ++trial) {
    const auto cut = static_cast<std::uint32_t>(rng.uniform_int(1u << 6));
    ThresholdState state = state_from_cut(qt.game, cut);
    const int node = static_cast<int>(rng.uniform_int(6));
    const double phi_before = qt.game.potential(state);
    state.toggle(qt.game, node);
    const double phi_after = qt.game.potential(state);
    EXPECT_NEAR(phi_after - phi_before, -inst.flip_gain(cut, node) / 2.0,
                1e-9);
  }
}

TEST(QuadraticThreshold, RosenthalIdentityHolds) {
  // ΔΦ of a toggle equals the toggling player's latency change.
  Rng rng(11);
  const auto inst = MaxCutInstance::random(5, 0.9, 6, rng);
  const auto qt = make_quadratic_threshold(inst);
  for (std::uint32_t cut = 0; cut < 32; ++cut) {
    for (int i = 0; i < 5; ++i) {
      ThresholdState s = state_from_cut(qt.game, cut);
      const double before_latency = qt.game.latency_of(s, i);
      const double target_latency = qt.game.latency_if_toggled(s, i);
      const double phi_before = qt.game.potential(s);
      s.toggle(qt.game, i);
      EXPECT_NEAR(qt.game.potential(s) - phi_before,
                  target_latency - before_latency, 1e-9);
      EXPECT_NEAR(qt.game.latency_of(s, i), target_latency, 1e-9);
    }
  }
}

TEST(ThresholdBestResponse, TerminatesAtStableState) {
  Rng rng(13);
  const auto inst = MaxCutInstance::random(8, 0.5, 12, rng);
  const auto qt = make_quadratic_threshold(inst);
  ThresholdState s = state_from_cut(qt.game, 0);
  const auto run = run_threshold_best_response(qt.game, s, 100000);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(qt.game.is_stable(s));
}

TEST(Tripled, ImitationSimulatesBaseGameFlipForFlip) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = MaxCutInstance::random(6, 0.7, 10, rng);
    const auto cut = static_cast<std::uint32_t>(rng.uniform_int(1u << 6));

    // Base game best-response run.
    const auto qt = make_quadratic_threshold(inst);
    ThresholdState base_state = state_from_cut(qt.game, cut);
    const auto base_run =
        run_threshold_best_response(qt.game, base_state, 100000);
    ASSERT_TRUE(base_run.converged);

    // Tripled imitation run from the canonical start.
    const auto tg = triple_quadratic_threshold(inst);
    ThresholdState ts = tripled_initial_state(tg, cut);
    const auto trip_run = run_tripled_imitation(tg, ts, 100000);
    EXPECT_TRUE(trip_run.converged);
    EXPECT_EQ(trip_run.steps, base_run.steps)
        << "tripled imitation must replay the base dynamics one-for-one";
  }
}

TEST(Tripled, CopiesNeverCoalesce) {
  // §3.2's key invariant: the three copies of a player never all use the
  // same strategy, so imitation never loses a strategy.
  Rng rng(19);
  const auto inst = MaxCutInstance::random(6, 0.7, 10, rng);
  const auto tg = triple_quadratic_threshold(inst);
  ThresholdState s = tripled_initial_state(tg, 0b010101);
  for (std::int64_t step = 0; step < 100000; ++step) {
    for (std::int32_t i = 0; i < tg.base_players; ++i) {
      const int in_count = static_cast<int>(s.plays_in(tg.copy(i, 0))) +
                           static_cast<int>(s.plays_in(tg.copy(i, 1))) +
                           static_cast<int>(s.plays_in(tg.copy(i, 2)));
      ASSERT_GE(in_count, 1) << "S_in lost for base player " << i;
      ASSERT_LE(in_count, 2) << "S_out lost for base player " << i;
    }
    const auto run = run_tripled_imitation(tg, s, 1);
    if (run.converged) return;
  }
  FAIL() << "tripled imitation did not converge";
}

TEST(Tripled, StableExactlyWhenBaseLocallyOptimal) {
  Rng rng(23);
  const auto inst = MaxCutInstance::random(5, 0.8, 8, rng);
  const auto qt = make_quadratic_threshold(inst);
  const auto tg = triple_quadratic_threshold(inst);
  for (std::uint32_t cut = 0; cut < 32; ++cut) {
    ThresholdState ts = tripled_initial_state(tg, cut);
    const auto run = run_tripled_imitation(tg, ts, 0);  // no steps: probe
    (void)run;
    // Probe stability by asking for one step.
    ThresholdState probe = tripled_initial_state(tg, cut);
    const auto one = run_tripled_imitation(tg, probe, 1);
    EXPECT_EQ(one.steps == 0, inst.is_local_opt(cut)) << "cut=" << cut;
  }
}

TEST(ThresholdGame, ValidatesConstruction) {
  EXPECT_THROW(ThresholdGame({}, {ThresholdPlayer{{0}, 0}}),
               invariant_violation);
  EXPECT_THROW(
      ThresholdGame({[](std::int64_t) { return 0.0; }}, {}),
      invariant_violation);
  EXPECT_THROW(ThresholdGame({[](std::int64_t) { return 0.0; }},
                             {ThresholdPlayer{{5}, 0}}),
               invariant_violation);
}

}  // namespace
}  // namespace cid
