// ProtocolKernel / LatencyKernel concept suite.
//
// The engine redesign (protocols/kernel.hpp, dynamics/engine_kernel.hpp,
// latency/kernel.hpp) must be invisible at the bit level. This suite pins:
//
//   1. concept level — every paper protocol's kernel models ProtocolKernel
//      (and the virtual classes do NOT — the concept really separates the
//      two interfaces); LatencyTable models LatencyKernel; the asymmetric
//      imitation kernel models AsymmetricProtocolKernel;
//   2. dispatch level — dispatch_protocol_kernel resolves each concrete
//      protocol to its monomorphized kernel, falls back to VirtualKernel
//      for unrecognized protocols, and pins VirtualKernel under
//      force_virtual;
//   3. latency level — LatencyTable::value reproduces every registered
//      latency-function shape (constant, linear, affine, monomial,
//      polynomial, scaled, and the opaque exponential fallback) bitwise at
//      the integer loads the engines evaluate;
//   4. row level — each monomorphized kernel's fill_row (the SIMD select
//      loop on singleton games) is bitwise-identical to the virtual
//      fill_move_probabilities row, sustained across incremental cache
//      refreshes;
//   5. round/run level — the templated draw_round<K> / run_dynamics<K>
//      over the monomorphized kernel, the same templates over
//      VirtualKernel, the type-erased Protocol frontend, and the per-pair
//      reference oracle all produce identical Migration lists AND consume
//      the RNG stream identically, including under row_threads ∈ {1,2,4};
//   6. trial level — every registry scenario family is bitwise-invariant
//      under EngineTuning::virtual_frontend, and checkpoints written by
//      one frontend resume bitwise on the other;
//   7. API level — the EngineInvocation entrypoint and the deprecated
//      run_dynamics shims are interchangeable bit for bit.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "dynamics/asymmetric_engine.hpp"
#include "dynamics/engine.hpp"
#include "dynamics/engine_kernel.hpp"
#include "game/builders.hpp"
#include "game/latency_context.hpp"
#include "latency/kernel.hpp"
#include "latency/latency.hpp"
#include "protocols/combined.hpp"
#include "protocols/exploration.hpp"
#include "protocols/imitation.hpp"
#include "protocols/kernel.hpp"
#include "sweep/scenario.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

// ---- 1. Concept membership --------------------------------------------------

static_assert(ProtocolKernel<VirtualKernel>);
static_assert(ProtocolKernel<ImitationKernel>);
static_assert(ProtocolKernel<ExplorationKernel>);
static_assert(ProtocolKernel<CombinedKernel>);
// The virtual classes expose fill_move_probabilities, not fill_row: the
// concept genuinely separates the two interfaces instead of accepting
// anything protocol-shaped.
static_assert(!ProtocolKernel<ImitationProtocol>);
static_assert(!ProtocolKernel<ExplorationProtocol>);
static_assert(!ProtocolKernel<CombinedProtocol>);

static_assert(LatencyKernel<LatencyTable>);
// LatencyFunction::value takes one argument (no resource index) — not a
// table.
static_assert(!LatencyKernel<LatencyFunction>);

static_assert(AsymmetricProtocolKernel<AsymmetricImitationKernel>);
static_assert(!AsymmetricProtocolKernel<ImitationKernel>);

// ---- 2. Kernel dispatch -----------------------------------------------------

template <typename Expected>
bool dispatches_to(const Protocol& protocol, bool force_virtual) {
  return dispatch_protocol_kernel(
      protocol, force_virtual, [](const auto& kernel) {
        return std::is_same_v<std::decay_t<decltype(kernel)>, Expected>;
      });
}

TEST(KernelDispatch, ConcreteProtocolsGetMonomorphizedKernels) {
  const ImitationProtocol imitation;
  const ExplorationProtocol exploration;
  const CombinedProtocol combined{ImitationParams{}, ExplorationParams{},
                                  0.5};
  EXPECT_TRUE(dispatches_to<ImitationKernel>(imitation, false));
  EXPECT_TRUE(dispatches_to<ExplorationKernel>(exploration, false));
  EXPECT_TRUE(dispatches_to<CombinedKernel>(combined, false));
}

TEST(KernelDispatch, ForceVirtualPinsTheAdapter) {
  const ImitationProtocol imitation;
  EXPECT_TRUE(dispatches_to<VirtualKernel>(imitation, true));
  EXPECT_EQ(VirtualKernel(imitation).name(), imitation.name());
}

TEST(KernelDispatch, UnrecognizedProtocolFallsBackToVirtualKernel) {
  // A protocol type the dispatch chain has never heard of must still run —
  // correct immediately via the VirtualKernel adapter, no engine changes.
  // (Wrapping rather than deriving: a subclass of ImitationProtocol would
  // still be caught by the dynamic_cast chain.)
  class OpaqueProtocol final : public Protocol {
   public:
    double move_probability(const CongestionGame& game, const State& x,
                            StrategyId from, StrategyId to) const override {
      return inner_.move_probability(game, x, from, to);
    }
    std::string name() const override { return "opaque"; }

   private:
    ImitationProtocol inner_;
  };
  const OpaqueProtocol opaque;
  EXPECT_TRUE(dispatches_to<VirtualKernel>(opaque, false));

  // And the fallback actually runs: one round on a real game.
  const auto game = make_monomial_fan_game(8, 1.0, 1.0, 500);
  Rng rng(3);
  State x = State::uniform_random(game, rng);
  const RoundResult rr =
      draw_round(game, x, opaque, rng, EngineMode::kAggregate);
  EXPECT_GE(rr.movers, 0);
}

// ---- 3. LatencyTable vs virtual latency functions ---------------------------

TEST(LatencyTableKernel, BitwiseMatchesEveryFunctionShape) {
  // One of each registered shape, including nesting that exercises the
  // ScaledLatency divisor and the opaque virtual fallback.
  std::vector<LatencyPtr> fns;
  fns.push_back(make_constant(2.5));
  fns.push_back(make_linear(1.5));
  fns.push_back(make_affine(0.5, 2.0));
  fns.push_back(make_monomial(0.7, 2.0));
  fns.push_back(make_monomial(3.0, 0.0));  // degree-0 monomial special case
  fns.push_back(make_polynomial({1.0, 0.0, 3.0, 0.5}));
  fns.push_back(make_polynomial({4.0}));
  fns.push_back(make_scaled(make_monomial(0.9, 3.0), 50));
  fns.push_back(make_scaled(make_polynomial({0.0, 2.0, 1.0}), 10));
  fns.push_back(make_exponential(1.1, 0.2));  // opaque fallback entry

  LatencyTable table;
  table.reserve(fns.size());
  for (const auto& fn : fns) table.add(*fn);
  ASSERT_EQ(table.size(), fns.size());

  for (std::size_t e = 0; e < fns.size(); ++e) {
    SCOPED_TRACE("entry " + std::to_string(e));
    for (std::int64_t load = 0; load <= 200; ++load) {
      const double x = static_cast<double>(load);
      // Bitwise: EXPECT_EQ on doubles, never EXPECT_NEAR.
      ASSERT_EQ(table.value(e, x), fns[e]->value(x)) << "load " << load;
    }
  }
}

TEST(LatencyTableKernel, ClearAllowsRebuildAgainstAnotherGame) {
  LatencyTable table;
  const auto poly = make_polynomial({1.0, 2.0, 3.0});
  table.add(*poly);
  EXPECT_EQ(table.size(), 1u);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  const auto mono = make_monomial(2.0, 2.0);
  table.add(*mono);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.value(0, 7.0), mono->value(7.0));
}

// ---- 4. Row-level kernel identity -------------------------------------------

CongestionGame network_game_k8(std::int64_t n) {
  const auto net = make_layered_network(2, 3);
  Rng latency_rng(11);
  std::vector<LatencyPtr> fns;
  for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
    fns.push_back(make_monomial(0.5 + latency_rng.uniform(),
                                latency_rng.bernoulli(0.5) ? 1.0 : 2.0));
  }
  return make_network_game(net, std::move(fns), n);
}

template <typename KernelT, typename ProtocolT>
void expect_rows_match_protocol(const CongestionGame& game,
                                const ProtocolT& protocol) {
  const KernelT kernel(protocol);
  const auto k = static_cast<std::size_t>(game.num_strategies());
  Rng rng(41);
  State x = State::uniform_random(game, rng);
  RoundWorkspace ws;
  RoundResult rr;
  LatencyContext ctx;
  ctx.reset(game, x);
  ApplyScratch scratch;
  std::vector<double> kernel_row(k);
  std::vector<double> virtual_row(k);
  for (int round = 0; round < 20; ++round) {
    for (StrategyId from = 0; from < game.num_strategies(); ++from) {
      kernel.fill_row(game, ctx, from, kernel_row);
      protocol.fill_move_probabilities(game, ctx, from, virtual_row);
      for (std::size_t to = 0; to < k; ++to) {
        ASSERT_EQ(kernel_row[to], virtual_row[to])
            << "round " << round << " pair " << from << "->" << to;
      }
    }
    // Mutate through a real draw so later iterations audit refreshed
    // cache entries (and, on singleton games, the SIMD select loop over
    // non-initial ell/ell_plus values).
    draw_round(game, x, kernel, rng, EngineMode::kAggregate, ws, rr);
    x.apply(game, rr.moves, scratch);
    ctx.refresh(scratch.touched);
    ws.ctx.refresh(scratch.touched);
  }
}

TEST(KernelRows, SingletonFastPathsMatchVirtualRows) {
  // Singleton game: under CID_SIMD=ON this drives the vectorizable select
  // loops; under =OFF the same assertions audit the delegating path.
  const auto game = make_monomial_fan_game(16, 1.0, 2.0, 4000);
  ImitationParams virtual_params;
  virtual_params.virtual_agents = 2;
  expect_rows_match_protocol<ImitationKernel>(game, ImitationProtocol());
  expect_rows_match_protocol<ImitationKernel>(
      game, ImitationProtocol(virtual_params));
  expect_rows_match_protocol<ExplorationKernel>(game, ExplorationProtocol());
  expect_rows_match_protocol<CombinedKernel>(
      game,
      CombinedProtocol{ImitationParams{}, ExplorationParams{}, 0.5});
}

TEST(KernelRows, NetworkGamesDelegateBitwise) {
  const auto game = network_game_k8(1500);
  expect_rows_match_protocol<ImitationKernel>(game, ImitationProtocol());
  expect_rows_match_protocol<ExplorationKernel>(game, ExplorationProtocol());
  expect_rows_match_protocol<CombinedKernel>(
      game,
      CombinedProtocol{ImitationParams{}, ExplorationParams{}, 0.5});
}

// ---- 5. Round- and run-level identity across all four paths -----------------

template <typename KernelT, typename ProtocolT>
void expect_four_paths_identical(const CongestionGame& game,
                                 const ProtocolT& protocol, EngineMode mode,
                                 std::int64_t rounds, std::uint64_t seed) {
  const KernelT mono(protocol);
  const VirtualKernel virt(protocol);
  // Four independent (rng, state, workspace) tuples; only the path differs.
  Rng mono_rng(seed), virt_rng(seed), front_rng(seed), oracle_rng(seed);
  State mono_x = State::uniform_random(game, mono_rng);
  State virt_x = State::uniform_random(game, virt_rng);
  State front_x = State::uniform_random(game, front_rng);
  State oracle_x = State::uniform_random(game, oracle_rng);
  RoundWorkspace mono_ws, virt_ws, front_ws;
  RoundResult mono_rr, virt_rr, front_rr;
  for (std::int64_t round = 0; round < rounds; ++round) {
    draw_round(game, mono_x, mono, mono_rng, mode, mono_ws, mono_rr);
    draw_round(game, virt_x, virt, virt_rng, mode, virt_ws, virt_rr);
    draw_round(game, front_x, protocol, front_rng, mode, front_ws, front_rr);
    const RoundResult oracle =
        draw_round_reference(game, oracle_x, virt, oracle_rng, mode);
    ASSERT_EQ(mono_rr.moves, virt_rr.moves) << "round " << round;
    ASSERT_EQ(mono_rr.moves, front_rr.moves) << "round " << round;
    ASSERT_EQ(mono_rr.moves, oracle.moves) << "round " << round;
    ASSERT_EQ(mono_rr.movers, oracle.movers) << "round " << round;
    ASSERT_EQ(mono_rng.state(), virt_rng.state()) << "round " << round;
    ASSERT_EQ(mono_rng.state(), front_rng.state()) << "round " << round;
    ASSERT_EQ(mono_rng.state(), oracle_rng.state()) << "round " << round;
    mono_x.apply(game, mono_rr.moves, mono_ws.apply_scratch);
    mono_ws.ctx.refresh(mono_ws.apply_scratch.touched);
    virt_x.apply(game, virt_rr.moves, virt_ws.apply_scratch);
    virt_ws.ctx.refresh(virt_ws.apply_scratch.touched);
    front_x.apply(game, front_rr.moves, front_ws.apply_scratch);
    front_ws.ctx.refresh(front_ws.apply_scratch.touched);
    oracle_x.apply(game, oracle.moves);
    ASSERT_TRUE(mono_x == oracle_x) << "round " << round;
  }
}

TEST(KernelRounds, MonoVirtualFrontendOracleIdenticalSingleton) {
  const auto game = make_monomial_fan_game(12, 1.0, 1.0, 5000);
  for (EngineMode mode :
       {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    const std::int64_t rounds = mode == EngineMode::kAggregate ? 50 : 20;
    expect_four_paths_identical<ImitationKernel>(game, ImitationProtocol(),
                                                 mode, rounds, 91);
    expect_four_paths_identical<ExplorationKernel>(
        game, ExplorationProtocol(), mode, rounds, 92);
    expect_four_paths_identical<CombinedKernel>(
        game, CombinedProtocol{ImitationParams{}, ExplorationParams{}, 0.5},
        mode, rounds, 93);
  }
}

TEST(KernelRounds, MonoVirtualFrontendOracleIdenticalNetwork) {
  const auto game = network_game_k8(3000);
  expect_four_paths_identical<ImitationKernel>(
      game, ImitationProtocol(), EngineMode::kAggregate, 40, 94);
  expect_four_paths_identical<CombinedKernel>(
      game, CombinedProtocol{ImitationParams{}, ExplorationParams{}, 0.5},
      EngineMode::kAggregate, 40, 95);
}

TEST(KernelRounds, TemplatedRowThreadsBitwiseInvariant) {
  // Direct templated-API thread invariance (the frontends are covered by
  // the oracle suite): the persistent-pool fan-out must be invisible.
  const auto game = network_game_k8(2000);
  const ImitationProtocol protocol;
  const ImitationKernel kernel(protocol);
  std::vector<State> finals;
  std::vector<std::array<std::uint64_t, 4>> rng_states;
  for (const int row_threads : {1, 2, 4}) {
    Rng rng(71);
    State x = State::uniform_random(game, rng);
    RoundWorkspace ws;
    RoundResult rr;
    for (int round = 0; round < 30; ++round) {
      draw_round(game, x, kernel, rng, EngineMode::kAggregate, ws, rr,
                 row_threads);
      x.apply(game, rr.moves, ws.apply_scratch);
      ws.ctx.refresh(ws.apply_scratch.touched);
    }
    finals.push_back(std::move(x));
    rng_states.push_back(rng.state());
  }
  EXPECT_TRUE(finals[0] == finals[1]);
  EXPECT_TRUE(finals[0] == finals[2]);
  EXPECT_EQ(rng_states[0], rng_states[1]);
  EXPECT_EQ(rng_states[0], rng_states[2]);
}

TEST(KernelRuns, TemplatedRunMatchesFrontendRun) {
  const auto game = make_monomial_fan_game(10, 2.0, 1.0, 20000);
  const ImitationProtocol protocol;
  const ImitationKernel kernel(protocol);
  EngineInvocation call;
  call.options.max_rounds = 120;

  Rng kernel_rng(13);
  State kernel_x = State::uniform_random(game, kernel_rng);
  const RunResult via_kernel =
      run_dynamics(game, kernel_x, kernel, kernel_rng, call);

  Rng front_rng(13);
  State front_x = State::uniform_random(game, front_rng);
  const RunResult via_frontend =
      run_dynamics(game, front_x, protocol, front_rng, call);

  EXPECT_EQ(via_kernel.rounds, via_frontend.rounds);
  EXPECT_EQ(via_kernel.total_movers, via_frontend.total_movers);
  EXPECT_EQ(via_kernel.latency_evals, via_frontend.latency_evals);
  EXPECT_TRUE(kernel_x == front_x);
  EXPECT_EQ(kernel_rng.state(), front_rng.state());
}

// ---- 6. Trial-level virtual_frontend invariance -----------------------------

struct FamilyCase {
  const char* scenario;
  std::int64_t n;
  const char* protocol;
  std::int64_t rounds;
};

const FamilyCase kFamilies[] = {
    {"singleton-uniform", 2000, "imitation", 60},
    {"load-balancing", 2000, "combined", 60},
    {"network-routing", 1500, "exploration", 60},
    {"asymmetric", 900, "imitation", 60},
    {"multicommodity", 900, "imitation", 60},
    {"threshold-lb", 12, "imitation", 4000},
};

sweep::DynamicsConfig family_dynamics(std::int64_t rounds,
                                      bool virtual_frontend) {
  sweep::DynamicsConfig dynamics;
  dynamics.max_rounds = rounds;
  dynamics.stop = sweep::StopRule::kNash;
  dynamics.check_interval = 3;
  dynamics.virtual_frontend = virtual_frontend;
  return dynamics;
}

TEST(KernelTrials, AllSixFamiliesInvariantUnderVirtualFrontend) {
  // virtual_frontend keeps the batched engine but swaps the monomorphized
  // kernel for the VirtualKernel adapter — i.e. the exact pre-redesign
  // path. Every family (and the RNG stream) must be unable to tell.
  for (const FamilyCase& c : kFamilies) {
    SCOPED_TRACE(c.scenario);
    sweep::ScenarioSpec spec;
    spec.name = c.scenario;
    const auto instance = sweep::make_scenario(spec, c.n);
    const auto protocol = sweep::parse_protocol_spec(c.protocol);
    const std::uint64_t seed = 8642;

    Rng mono_rng(seed);
    const sweep::TrialOutcome mono = instance->run_trial(
        protocol, family_dynamics(c.rounds, false), mono_rng);
    Rng virt_rng(seed);
    const sweep::TrialOutcome virt = instance->run_trial(
        protocol, family_dynamics(c.rounds, true), virt_rng);
    EXPECT_EQ(mono, virt);
    EXPECT_EQ(mono_rng.state(), virt_rng.state());
  }
}

TEST(KernelTrials, CheckpointsInterchangeableAcrossFrontends) {
  // A monomorphized-kernel trial checkpointed at round 9, killed, and
  // resumed on the VIRTUAL frontend must bitwise-match the uninterrupted
  // monomorphized run — snapshots carry no trace of the kernel frontend.
  sweep::ScenarioSpec spec;
  spec.name = "network-routing";
  const auto instance = sweep::make_scenario(spec, 1500);
  const auto protocol = sweep::parse_protocol_spec("combined");
  const std::uint64_t seed = 4242;
  const std::int64_t total_rounds = 60;

  Rng full_rng(seed);
  const sweep::TrialOutcome uninterrupted = instance->run_trial(
      protocol, family_dynamics(total_rounds, false), full_rng);

  const std::string snap =
      ::testing::TempDir() + "/kernel_frontend_interchange.snap";
  Rng killed_rng(seed);
  instance->run_trial_checkpointed(protocol, family_dynamics(9, false),
                                   killed_rng,
                                   sweep::TrialCheckpoint{snap, 0});
  const sweep::TrialOutcome resumed = instance->resume_trial(
      protocol, family_dynamics(total_rounds, true), snap);
  EXPECT_EQ(resumed, uninterrupted);
  EXPECT_GT(uninterrupted.rounds, 9.0);  // the resumed leg did real work
  std::remove(snap.c_str());
}

// ---- 7. EngineInvocation vs deprecated shims --------------------------------

TEST(EngineInvocationApi, MatchesStopPredicateShim) {
  const auto game = make_monomial_fan_game(10, 1.0, 1.0, 8000);
  const ImitationProtocol protocol;
  RunOptions options;
  options.max_rounds = 500;
  options.check_interval = 5;
  const StopPredicate stop = [](const CongestionGame&, const State&,
                                std::int64_t round) { return round >= 85; };

  Rng shim_rng(17);
  State shim_x = State::uniform_random(game, shim_rng);
  const RunResult via_shim =
      run_dynamics(game, shim_x, protocol, shim_rng, options, stop);

  EngineInvocation call;
  call.options = options;
  call.stop = stop;
  Rng call_rng(17);
  State call_x = State::uniform_random(game, call_rng);
  const RunResult via_call =
      run_dynamics(game, call_x, protocol, call_rng, call);

  EXPECT_EQ(via_call.rounds, via_shim.rounds);
  EXPECT_EQ(via_call.converged, via_shim.converged);
  EXPECT_EQ(via_call.total_movers, via_shim.total_movers);
  EXPECT_TRUE(call_x == shim_x);
  EXPECT_EQ(call_rng.state(), shim_rng.state());
  EXPECT_TRUE(via_call.converged);  // the predicate actually fired
}

TEST(EngineInvocationApi, MatchesNullptrShim) {
  // The PR 5 nullptr_t disambiguator == an EngineInvocation with no stop.
  const auto game = network_game_k8(1000);
  const ExplorationProtocol protocol;
  RunOptions options;
  options.max_rounds = 40;

  Rng shim_rng(19);
  State shim_x = State::uniform_random(game, shim_rng);
  const RunResult via_shim =
      run_dynamics(game, shim_x, protocol, shim_rng, options, nullptr);

  EngineInvocation call;
  call.options = options;
  Rng call_rng(19);
  State call_x = State::uniform_random(game, call_rng);
  const RunResult via_call =
      run_dynamics(game, call_x, protocol, call_rng, call);

  EXPECT_EQ(via_call.rounds, via_shim.rounds);
  EXPECT_EQ(via_call.total_movers, via_shim.total_movers);
  EXPECT_TRUE(call_x == shim_x);
  EXPECT_EQ(call_rng.state(), shim_rng.state());
  EXPECT_FALSE(via_call.converged);  // no predicate, ran to max_rounds
}

TEST(EngineInvocationApi, RejectsTwoStopPredicates) {
  const auto game = make_monomial_fan_game(4, 1.0, 1.0, 100);
  const ImitationProtocol protocol;
  EngineInvocation call;
  call.options.max_rounds = 1;
  call.stop = [](const CongestionGame&, const State&, std::int64_t) {
    return true;
  };
  call.cached_stop = [](const LatencyContext&, std::int64_t) {
    return true;
  };
  Rng rng(1);
  State x = State::uniform_random(game, rng);
  EXPECT_THROW(run_dynamics(game, x, protocol, rng, call),
               invariant_violation);
}

}  // namespace
}  // namespace cid
