// Property-based sweeps (TEST_P): cross-cutting invariants checked over a
// grid of {game family} × {protocol} × {engine}. These are the "no state is
// ever corrupted, no law is ever violated" guarantees the rest of the
// reproduction stands on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "dynamics/engine.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "dynamics/equilibrium.hpp"
#include "game/builders.hpp"
#include "game/potential.hpp"
#include "graph/generators.hpp"
#include "protocols/combined.hpp"
#include "protocols/exploration.hpp"
#include "protocols/imitation.hpp"

namespace cid {
namespace {

enum class GameFamily {
  kLinearLinks,
  kQuadraticLinks,
  kMixedPolyLinks,
  kBraess,
  kLayered,
};

enum class ProtocolKind {
  kImitation,
  kImitationNoNu,
  kImitationVirtual,
  kExploration,
  kCombined,
};

std::string family_name(GameFamily f) {
  switch (f) {
    case GameFamily::kLinearLinks: return "LinearLinks";
    case GameFamily::kQuadraticLinks: return "QuadraticLinks";
    case GameFamily::kMixedPolyLinks: return "MixedPolyLinks";
    case GameFamily::kBraess: return "Braess";
    case GameFamily::kLayered: return "Layered";
  }
  return "?";
}

std::string protocol_name(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kImitation: return "Imitation";
    case ProtocolKind::kImitationNoNu: return "ImitationNoNu";
    case ProtocolKind::kImitationVirtual: return "ImitationVirtual";
    case ProtocolKind::kExploration: return "Exploration";
    case ProtocolKind::kCombined: return "Combined";
  }
  return "?";
}

CongestionGame build_game(GameFamily family, std::int64_t n) {
  switch (family) {
    case GameFamily::kLinearLinks:
      return make_uniform_links_game(5, make_linear(1.0), n);
    case GameFamily::kQuadraticLinks:
      return make_uniform_links_game(4, make_monomial(0.5, 2.0), n);
    case GameFamily::kMixedPolyLinks: {
      std::vector<LatencyPtr> fns{make_linear(1.0), make_affine(0.5, 2.0),
                                  make_monomial(0.2, 2.0),
                                  make_polynomial({1.0, 0.5, 0.1}),
                                  make_constant(30.0)};
      return make_singleton_game(std::move(fns), n);
    }
    case GameFamily::kBraess: {
      const auto net = make_braess_network();
      std::vector<LatencyPtr> fns{make_linear(0.5), make_constant(20.0),
                                  make_constant(20.0), make_linear(0.5),
                                  make_constant(1.0)};
      return make_network_game(net, std::move(fns), n);
    }
    case GameFamily::kLayered: {
      const auto net = make_layered_network(2, 2);
      std::vector<LatencyPtr> fns;
      for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
        fns.push_back(make_linear(0.5 + 0.25 * static_cast<double>(e % 3)));
      }
      return make_network_game(net, std::move(fns), n);
    }
  }
  CID_ENSURE(false, "unreachable");
  return make_uniform_links_game(1, make_linear(1.0), 1);
}

std::unique_ptr<Protocol> build_protocol(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kImitation:
      return std::make_unique<ImitationProtocol>();
    case ProtocolKind::kImitationNoNu: {
      ImitationParams p;
      p.nu_cutoff = false;
      return std::make_unique<ImitationProtocol>(p);
    }
    case ProtocolKind::kImitationVirtual: {
      ImitationParams p;
      p.virtual_agents = 1;
      p.nu_cutoff = false;
      return std::make_unique<ImitationProtocol>(p);
    }
    case ProtocolKind::kExploration:
      return std::make_unique<ExplorationProtocol>();
    case ProtocolKind::kCombined:
      return std::make_unique<CombinedProtocol>(ImitationParams{},
                                                ExplorationParams{});
  }
  CID_ENSURE(false, "unreachable");
  return nullptr;
}

using Config = std::tuple<GameFamily, ProtocolKind, EngineMode>;

class DynamicsProperties : public ::testing::TestWithParam<Config> {};

TEST_P(DynamicsProperties, RoundsPreserveEveryStructuralInvariant) {
  const auto [family, kind, mode] = GetParam();
  const std::int64_t n = 200;
  const auto game = build_game(family, n);
  const auto protocol = build_protocol(kind);
  Rng rng(0xAB);
  State x = State::uniform_random(game, rng);
  for (int round = 0; round < 25; ++round) {
    const RoundResult rr = draw_round(game, x, *protocol, rng, mode);
    // (1) feasible outflows per origin strategy
    std::vector<std::int64_t> outflow(
        static_cast<std::size_t>(game.num_strategies()), 0);
    for (const Migration& mv : rr.moves) {
      ASSERT_GT(mv.count, 0);
      ASSERT_NE(mv.from, mv.to);
      outflow[static_cast<std::size_t>(mv.from)] += mv.count;
    }
    for (StrategyId p = 0; p < game.num_strategies(); ++p) {
      ASSERT_LE(outflow[static_cast<std::size_t>(p)], x.count(p));
    }
    // (2) potential bookkeeping identity (exact ΔΦ from deltas)
    const double dphi = potential_gain(game, x, rr.moves);
    const double phi_before = game.potential(x);
    x.apply(game, rr.moves);
    ASSERT_NEAR(game.potential(x), phi_before + dphi,
                1e-7 * (1.0 + std::abs(phi_before)));
    // (3) full state consistency after application
    x.check_consistent(game);
  }
}

TEST_P(DynamicsProperties, MoveProbabilitiesFormASubdistribution) {
  const auto [family, kind, mode] = GetParam();
  (void)mode;
  const auto game = build_game(family, 150);
  const auto protocol = build_protocol(kind);
  Rng rng(0xCD);
  for (int trial = 0; trial < 10; ++trial) {
    const State x = State::uniform_random(game, rng);
    for (StrategyId p : x.support()) {
      double total = 0.0;
      for (StrategyId q = 0; q < game.num_strategies(); ++q) {
        if (q == p) continue;
        const double prob = protocol->move_probability(game, x, p, q);
        ASSERT_GE(prob, 0.0);
        ASSERT_LE(prob, 1.0);
        total += prob;
      }
      ASSERT_LE(total, 1.0 + 1e-9);
    }
  }
}

TEST_P(DynamicsProperties, PotentialDriftIsNonPositive) {
  const auto [family, kind, mode] = GetParam();
  const auto game = build_game(family, 300);
  const auto protocol = build_protocol(kind);
  RunningStat drift;
  for (int trial = 0; trial < 30; ++trial) {
    Rng rng(1000 + static_cast<std::uint64_t>(trial));
    State x = State::uniform_random(game, rng);
    const double phi0 = game.potential(x);
    for (int round = 0; round < 15; ++round) {
      step_round(game, x, *protocol, rng, mode);
    }
    drift.add(game.potential(x) - phi0);
  }
  // Super-martingale within noise (Corollary 3 / Lemma 14): allow 4 sigma.
  EXPECT_LE(drift.mean(), 4.0 * drift.sem() + 1e-9)
      << family_name(family) << "/" << protocol_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicsProperties,
    ::testing::Combine(
        ::testing::Values(GameFamily::kLinearLinks,
                          GameFamily::kQuadraticLinks,
                          GameFamily::kMixedPolyLinks, GameFamily::kBraess,
                          GameFamily::kLayered),
        ::testing::Values(ProtocolKind::kImitation,
                          ProtocolKind::kImitationNoNu,
                          ProtocolKind::kImitationVirtual,
                          ProtocolKind::kExploration,
                          ProtocolKind::kCombined),
        ::testing::Values(EngineMode::kAggregate, EngineMode::kPerPlayer)),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      return family_name(std::get<0>(param_info.param)) +
             protocol_name(std::get<1>(param_info.param)) +
             (std::get<2>(param_info.param) == EngineMode::kAggregate
                  ? "Agg"
                  : "PerPlayer");
    });

// ---- Equilibrium-notion implications over random states --------------------

class EquilibriumImplications
    : public ::testing::TestWithParam<GameFamily> {};

TEST_P(EquilibriumImplications, NashImpliesStableImpliesApproxChain) {
  const auto game = build_game(GetParam(), 60);
  Rng rng(0xEF);
  for (int trial = 0; trial < 200; ++trial) {
    const State x = State::uniform_random(game, rng);
    if (is_nash(game, x)) {
      EXPECT_TRUE(is_imitation_stable(game, x, 0.0));
      EXPECT_DOUBLE_EQ(nash_gap(game, x), 0.0);
    }
    if (is_imitation_stable(game, x, 0.0)) {
      EXPECT_TRUE(is_imitation_stable(game, x, game.nu()));
      EXPECT_DOUBLE_EQ(imitation_gap(game, x), 0.0);
    }
    // gap monotonicity: support-restricted gap <= full-space gap.
    EXPECT_LE(imitation_gap(game, x), nash_gap(game, x) + 1e-9);
    // Definition 1 monotone in delta and eps.
    if (is_delta_eps_equilibrium(game, x, 0.1, 0.1)) {
      EXPECT_TRUE(is_delta_eps_equilibrium(game, x, 0.2, 0.1));
      EXPECT_TRUE(is_delta_eps_equilibrium(game, x, 0.1, 0.2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, EquilibriumImplications,
                         ::testing::Values(GameFamily::kLinearLinks,
                                           GameFamily::kQuadraticLinks,
                                           GameFamily::kMixedPolyLinks,
                                           GameFamily::kBraess,
                                           GameFamily::kLayered),
                         [](const ::testing::TestParamInfo<GameFamily>& pinfo) {
                           return family_name(pinfo.param);
                         });

}  // namespace
}  // namespace cid
