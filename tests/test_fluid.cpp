// Fluid-limit tests: mass conservation, Beckmann-potential monotonicity,
// agreement of the fluid round with the atomic engine's expectation, and
// law-of-large-numbers tracking as n grows.
#include <gtest/gtest.h>

#include <cmath>

#include "dynamics/engine.hpp"
#include "game/builders.hpp"
#include "protocols/imitation.hpp"
#include "util/assert.hpp"
#include "wardrop/fluid.hpp"

namespace cid {
namespace {

TEST(FluidState, ConstructionAndDerivedCongestion) {
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0),
                              make_linear(1.0)};
  CongestionGame game(std::move(fns), {{0, 1}, {1, 2}}, 10);
  const FluidState x(game, {6.5, 3.5});
  EXPECT_DOUBLE_EQ(x.congestion(0), 6.5);
  EXPECT_DOUBLE_EQ(x.congestion(1), 10.0);
  EXPECT_DOUBLE_EQ(x.congestion(2), 3.5);
  EXPECT_THROW(FluidState(game, {6.0, 3.0}), invariant_violation);
  EXPECT_THROW(FluidState(game, {-1.0, 11.0}), invariant_violation);
}

TEST(FluidState, FromStateMatchesCounts) {
  const auto game = make_uniform_links_game(3, make_linear(1.0), 9);
  const State s(game, {5, 3, 1});
  const FluidState f = FluidState::from_state(game, s);
  for (StrategyId p = 0; p < 3; ++p) {
    EXPECT_DOUBLE_EQ(f.mass(p), static_cast<double>(s.count(p)));
  }
  EXPECT_DOUBLE_EQ(fluid_state_distance(game, f, s), 0.0);
}

TEST(FluidRound, ConservesMass) {
  const auto game = make_uniform_links_game(4, make_monomial(1.0, 2.0), 100);
  ImitationParams params;
  FluidState x(game, {70.0, 15.0, 10.0, 5.0});
  for (int round = 0; round < 50; ++round) {
    x = fluid_round(game, x, params);
    double total = 0.0;
    for (StrategyId p = 0; p < 4; ++p) {
      ASSERT_GE(x.mass(p), -1e-9);
      total += x.mass(p);
    }
    ASSERT_NEAR(total, 100.0, 1e-6);
  }
}

TEST(FluidRound, MatchesAtomicExpectation) {
  // One fluid round == expected one atomic round (same marginal law).
  const auto game = make_uniform_links_game(2, make_linear(1.0), 1000);
  ImitationParams params;
  params.convention = SamplingConvention::kIncludeSelf;  // fluid uses x_Q/n
  const ImitationProtocol protocol(params);
  const State s0(game, {700, 300});
  const FluidState f0 = FluidState::from_state(game, s0);
  const FluidState f1 = fluid_round(game, f0, params);

  Rng rng(5);
  double mean0 = 0.0;
  const int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    const RoundResult rr =
        draw_round(game, s0, protocol, rng, EngineMode::kAggregate);
    State y = s0;
    y.apply(game, rr.moves);
    mean0 += static_cast<double>(y.count(0));
  }
  mean0 /= kTrials;
  // s.d. of the mean ≈ sqrt(700·p)/sqrt(trials) — generous 5σ tolerance.
  EXPECT_NEAR(f1.mass(0), mean0, 0.5);
}

TEST(FluidPotential, ExactForLinearAndQuadratic) {
  // Beckmann potential of a·x on load L is a·L²/2; of a·x² it is a·L³/3.
  std::vector<LatencyPtr> fns{make_linear(2.0), make_monomial(3.0, 2.0)};
  const auto game = make_singleton_game(std::move(fns), 10);
  const FluidState x(game, {4.0, 6.0});
  EXPECT_NEAR(fluid_potential(game, x),
              2.0 * 16.0 / 2.0 + 3.0 * 216.0 / 3.0, 1e-9);
}

TEST(FluidPotential, DecreasesAlongFluidDynamics) {
  const auto game = make_uniform_links_game(4, make_monomial(1.0, 3.0), 200);
  ImitationParams params;
  FluidState x(game, {140.0, 30.0, 20.0, 10.0});
  double phi = fluid_potential(game, x);
  for (int round = 0; round < 100; ++round) {
    x = fluid_round(game, x, params);
    const double next = fluid_potential(game, x);
    ASSERT_LE(next, phi + 1e-9) << "round " << round;
    phi = next;
  }
}

TEST(FluidRound, StochasticTrajectoryTracksFluid) {
  // LLN: max-congestion deviation after T rounds shrinks ~ 1/sqrt(n).
  ImitationParams params;
  params.convention = SamplingConvention::kIncludeSelf;
  const ImitationProtocol protocol(params);
  const int kRounds = 30;
  double prev_err = 1e9;
  for (std::int64_t n : {std::int64_t{100}, std::int64_t{10000}}) {
    const auto game = make_uniform_links_game(4, make_linear(1.0), n);
    std::vector<double> mass{0.7 * static_cast<double>(n),
                             0.15 * static_cast<double>(n),
                             0.1 * static_cast<double>(n),
                             0.05 * static_cast<double>(n)};
    std::vector<std::int64_t> counts;
    std::int64_t assigned = 0;
    for (double m : mass) {
      counts.push_back(static_cast<std::int64_t>(m));
      assigned += counts.back();
    }
    counts[0] += n - assigned;
    FluidState f(game, mass);
    double err_acc = 0.0;
    const int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      Rng rng(77 + static_cast<std::uint64_t>(t));
      State s(game, counts);
      FluidState ft = f;
      double worst = 0.0;
      for (int round = 0; round < kRounds; ++round) {
        step_round(game, s, protocol, rng, EngineMode::kAggregate);
        ft = fluid_round(game, ft, params);
        worst = std::max(worst, fluid_state_distance(game, ft, s));
      }
      err_acc += worst;
    }
    const double err = err_acc / kTrials;
    EXPECT_LT(err, prev_err * 0.5)
        << "deviation should shrink substantially with n";
    prev_err = err;
  }
}

TEST(FluidEquilibrium, DetectsBalancedStates) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 100);
  EXPECT_TRUE(fluid_is_delta_eps_nu(game, FluidState::spread_evenly(game),
                                    0.0, 0.1, 0.0));
  const FluidState skew(game, {70.0, 10.0, 10.0, 10.0});
  EXPECT_FALSE(fluid_is_delta_eps_nu(game, skew, 0.1, 0.05, 0.0));
}

}  // namespace
}  // namespace cid
