// Deterministic fault injection (src/util/fault.hpp) and the recovery
// paths it exists to prove out.
//
// The central contract mirrors the sweep-resume tests: injecting write
// failures or a crash-at-point into a manifest-backed sweep, then
// recovering (writer retry, or clear_faults + resume), must leave a
// manifest byte-identical to the one a fault-free run writes. Outcomes
// are a pure function of the grid and the manifest stores them
// bit-exactly, so any recovery that loses or duplicates bytes shows up
// as a comparison failure here. All sweeps run --threads 1 so the
// fault-schedule consultation order (and with it hit= targeting) is
// deterministic.
//
// Every firing-dependent test skips under -DCID_FAULTS=OFF — there the
// layer parses specs but never fires, which is itself asserted below.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "persist/binio.hpp"
#include "persist/manifest.hpp"
#include "sweep/runner.hpp"
#include "util/fault.hpp"

namespace cid::sweep {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

[[noreturn]] void throwing_crash_handler(const char* site) {
  throw util::fault_crash(std::string("injected crash at ") + site);
}

/// Disarms the global schedule around every test: the layer is
/// process-global state and must never leak into a neighbor.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::clear_faults();
    util::set_fault_crash_handler(nullptr);
  }
};

SweepGrid small_grid(const std::string& scenario, std::int64_t n,
                     std::int64_t rounds) {
  SweepGrid grid;
  grid.scenario.name = scenario;
  grid.protocols = parse_protocol_list("imitation");
  grid.ns = {n};
  grid.trials = 3;
  grid.master_seed = 77;
  grid.dynamics.max_rounds = rounds;
  return grid;
}

SweepOptions manifest_options(const std::string& manifest) {
  SweepOptions options;
  options.threads = 1;
  options.manifest_path = manifest;
  options.retry_backoff_ms = 0.0;  // tests should not sleep
  return options;
}

/// Runs the grid fault-free into a fresh manifest and returns its bytes.
std::string reference_manifest_bytes(const SweepGrid& grid,
                                     const std::string& name) {
  const std::string path = temp_path(name);
  run_sweep(grid, manifest_options(path));
  const std::string bytes = persist::slurp_file(path);
  std::remove(path.c_str());
  return bytes;
}

TEST_F(FaultTest, SpecGrammarIsValidatedEvenWhenCompiledOut) {
  EXPECT_NO_THROW(util::configure_faults(
      "seed=9;manifest.append:err:hit=2;eventlog.*:short:p=0.5:count=3"));
  util::clear_faults();
  EXPECT_THROW(util::configure_faults("manifest.append"), std::runtime_error);
  EXPECT_THROW(util::configure_faults("manifest.append:frobnicate"),
               std::runtime_error);
  EXPECT_THROW(util::configure_faults("seed=notanumber;a:err"),
               std::runtime_error);
  EXPECT_THROW(util::configure_faults("a:err:p=1.5"), std::runtime_error);
  // An empty spec disarms rather than erroring.
  util::configure_faults("seed=1;manifest.append:err");
  util::configure_faults("");
  EXPECT_FALSE(util::faults_armed());
}

TEST_F(FaultTest, CompiledOutLayerNeverArmsOrFires) {
  if (util::kFaultsCompiled) GTEST_SKIP() << "CID_FAULTS is ON";
  util::configure_faults("seed=1;manifest.append:err:every=1");
  EXPECT_FALSE(util::faults_armed());
  EXPECT_EQ(util::fault_point("manifest.append").kind,
            util::FaultKind::kNone);
}

TEST_F(FaultTest, SameSeedSameSchedule) {
  if (!util::kFaultsCompiled) GTEST_SKIP() << "CID_FAULTS is OFF";
  const auto firings = [](const std::string& spec) {
    util::configure_faults(spec);
    std::vector<int> fired;
    for (int i = 0; i < 64; ++i) {
      if (util::fault_point("x.y").kind != util::FaultKind::kNone) {
        fired.push_back(i);
      }
    }
    util::clear_faults();
    return fired;
  };
  const std::string spec = "seed=42;x.*:err:p=0.25";
  const std::vector<int> first = firings(spec);
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 64u);  // p=0.25 is not "always"
  EXPECT_EQ(firings(spec), first);  // pure function of the spec
  EXPECT_NE(firings("seed=43;x.*:err:p=0.25"), first);
}

TEST_F(FaultTest, HitTargetsExactlyOneConsultation) {
  if (!util::kFaultsCompiled) GTEST_SKIP() << "CID_FAULTS is OFF";
  util::configure_faults("seed=1;s.a:short:hit=3");
  std::vector<util::FaultKind> kinds;
  for (int i = 0; i < 5; ++i) kinds.push_back(util::fault_point("s.a").kind);
  const std::vector<util::FaultKind> expected = {
      util::FaultKind::kNone, util::FaultKind::kNone,
      util::FaultKind::kShortWrite, util::FaultKind::kNone,
      util::FaultKind::kNone};
  EXPECT_EQ(kinds, expected);
}

// Every transient write-failure kind on the manifest hot path must be
// absorbed by the writer's truncate-and-rewrite recovery, leaving a file
// byte-identical to a fault-free run's.
TEST_F(FaultTest, ManifestWriteFaultsRecoverByteIdentical) {
  if (!util::kFaultsCompiled) GTEST_SKIP() << "CID_FAULTS is OFF";
  const SweepGrid grid = small_grid("load-balancing", 200, 500);
  const std::string reference =
      reference_manifest_bytes(grid, "fault_ref.manifest");

  struct SiteCase {
    const char* site;
    int hit;  // the header is written once; appends/flushes per record
  };
  const SiteCase kSites[] = {
      {"manifest.header", 1}, {"manifest.append", 2}, {"manifest.flush", 2}};
  for (const char* kind : {"err", "short", "enospc"}) {
    SCOPED_TRACE(kind);
    for (const SiteCase& s : kSites) {
      SCOPED_TRACE(s.site);
      const std::string path = temp_path("fault_rec.manifest");
      util::configure_faults("seed=5;" + std::string(s.site) + ":" + kind +
                             ":hit=" + std::to_string(s.hit));
      const SweepResult result = run_sweep(grid, manifest_options(path));
      util::clear_faults();
      EXPECT_TRUE(result.complete);
      EXPECT_TRUE(result.failures.empty());
      EXPECT_FALSE(result.manifest_degraded);
      EXPECT_EQ(persist::slurp_file(path), reference);
      std::remove(path.c_str());
    }
  }
}

// Crash-at-point, then resume, for every registered scenario family: the
// resumed manifest must equal the fault-free one byte for byte. The
// in-process crash handler throws fault_crash, which the runner's retry
// logic deliberately refuses to treat as a retryable trial error.
TEST_F(FaultTest, CrashAndResumeIsByteIdenticalForAllSixFamilies) {
  if (!util::kFaultsCompiled) GTEST_SKIP() << "CID_FAULTS is OFF";
  struct FamilyCase {
    const char* scenario;
    std::int64_t n;
    std::int64_t rounds;
  };
  // The n values are the per-family smoke sizes tests/
  // test_resume_families.cpp established as valid for every scenario.
  const FamilyCase kCases[] = {
      {"singleton-uniform", 2000, 500}, {"load-balancing", 2000, 500},
      {"network-routing", 1500, 500},   {"asymmetric", 900, 500},
      {"multicommodity", 900, 500},     {"threshold-lb", 12, 4000},
  };
  util::set_fault_crash_handler(&throwing_crash_handler);
  for (const FamilyCase& c : kCases) {
    SCOPED_TRACE(c.scenario);
    const SweepGrid grid = small_grid(c.scenario, c.n, c.rounds);
    const std::string reference = reference_manifest_bytes(
        grid, std::string("crash_ref_") + c.scenario + ".manifest");

    const std::string path =
        temp_path(std::string("crash_") + c.scenario + ".manifest");
    util::configure_faults("seed=3;manifest.append:crash:hit=2");
    EXPECT_THROW(run_sweep(grid, manifest_options(path)), util::fault_crash);
    util::clear_faults();

    // The dead run left a valid prefix; the resume completes the grid.
    const SweepResult resumed = run_sweep(grid, manifest_options(path));
    EXPECT_TRUE(resumed.complete);
    EXPECT_GT(resumed.resumed_trials, 0u);
    EXPECT_EQ(persist::slurp_file(path), reference);
    std::remove(path.c_str());
  }
}

// Trial-level isolation: a transiently failing trial is retried with a
// fresh copy of its Rng stream, so the retried sweep's manifest equals
// the fault-free one byte for byte.
TEST_F(FaultTest, TransientTrialFaultIsRetriedToTheIdenticalResult) {
  if (!util::kFaultsCompiled) GTEST_SKIP() << "CID_FAULTS is OFF";
  const SweepGrid grid = small_grid("load-balancing", 200, 500);
  const std::string reference =
      reference_manifest_bytes(grid, "retry_ref.manifest");

  const std::string path = temp_path("retry.manifest");
  util::configure_faults("seed=1;sweep.trial:err:hit=2");
  const SweepResult result = run_sweep(grid, manifest_options(path));
  util::clear_faults();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.trial_retries, 1);
  EXPECT_EQ(persist::slurp_file(path), reference);
  std::remove(path.c_str());
}

// A trial that fails on EVERY attempt exhausts its budget, lands in
// SweepResult::failures, and is excluded from aggregation — without
// killing the sweep or poisoning the other trials' records.
TEST_F(FaultTest, PermanentTrialFailureIsIsolatedAndReported) {
  if (!util::kFaultsCompiled) GTEST_SKIP() << "CID_FAULTS is OFF";
  const SweepGrid grid = small_grid("load-balancing", 200, 500);
  const std::string path = temp_path("permfail.manifest");
  SweepOptions options = manifest_options(path);
  options.trial_max_attempts = 2;
  // Two firings = both attempts of exactly one trial (threads=1 keeps the
  // consultation order serial per trial).
  util::configure_faults("seed=1;sweep.trial:err:every=1:count=2");
  const SweepResult result = run_sweep(grid, options);
  util::clear_faults();

  EXPECT_TRUE(result.complete);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].trial_index, 0u);
  EXPECT_EQ(result.failures[0].attempts, 2);
  EXPECT_EQ(result.trial_retries, 1);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].trials, grid.trials - 1);  // failure excluded

  // The manifest holds the two surviving trials; a fault-free rerun over
  // the same manifest back-fills the failed one. The back-filled record
  // lands LAST in append order, so raw bytes differ from a never-faulted
  // run — but the canonical (cell, trial)-sorted form must be identical
  // to the fault-free threads=1 manifest, which is already canonical.
  const persist::ManifestContents contents =
      persist::load_manifest(path, grid);
  EXPECT_EQ(contents.completed.size(), 2u);
  const SweepResult healed = run_sweep(grid, manifest_options(path));
  EXPECT_TRUE(healed.complete);
  EXPECT_TRUE(healed.failures.empty());
  const std::string canonical = temp_path("permfail_canonical.manifest");
  persist::write_manifest_canonical(canonical,
                                    persist::merge_manifests({path}, {}));
  EXPECT_EQ(persist::slurp_file(canonical),
            reference_manifest_bytes(grid, "permfail_ref.manifest"));
  std::remove(canonical.c_str());
  std::remove(path.c_str());
}

// Rotation failure degrades to unrotated output instead of aborting; the
// record CONTENT (not framing) must match the fault-free run.
TEST_F(FaultTest, FailedRotationDegradesToUnrotatedOutput) {
  if (!util::kFaultsCompiled) GTEST_SKIP() << "CID_FAULTS is OFF";
  const SweepGrid grid = small_grid("load-balancing", 200, 500);
  const std::string path = temp_path("degrade.manifest");
  SweepOptions options = manifest_options(path);
  options.manifest_rotate_bytes = 64;  // would rotate after every record
  util::configure_faults("seed=1;manifest.rotate:err:every=1");
  const SweepResult result = run_sweep(grid, options);
  util::clear_faults();
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.manifest_degraded);  // degraded rotation, not data
  const persist::ManifestContents contents =
      persist::load_manifest(path, grid);
  EXPECT_EQ(contents.completed.size(),
            static_cast<std::size_t>(grid.trials));
  EXPECT_TRUE(contents.corrupt_segments.empty());
  for (const std::string& segment : persist::chain_segments(path)) {
    std::remove(segment.c_str());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cid::sweep
