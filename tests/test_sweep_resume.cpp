// Resumable-sweep guarantees: an interrupted grid, resumed from its
// manifest, must produce output byte-identical to an uninterrupted run —
// at every thread count (the acceptance criterion checks threads 1 and 4).
// The interruption is driven through SweepOptions::max_new_trials, the
// deterministic stand-in for a kill: the runner stops scheduling new
// trials mid-grid, exactly like a process that died between trials.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "persist/binio.hpp"
#include "persist/manifest.hpp"
#include "sweep/output.hpp"
#include "sweep/runner.hpp"

namespace cid::sweep {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SweepGrid resume_grid() {
  SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 4.0}};
  grid.protocols = parse_protocol_list("imitation,combined");
  grid.ns = {200, 500};
  grid.trials = 5;  // 4 cells x 5 = 20 trials
  grid.master_seed = 99;
  grid.dynamics.max_rounds = 2000;
  return grid;
}

/// Serializes the deterministic per-trial output files to one string.
std::string trial_output_bytes(const SweepResult& result) {
  const std::string csv = temp_path("trials_bytes.csv");
  const std::string jsonl = temp_path("trials_bytes.jsonl");
  write_trials_csv(csv, result);
  write_trials_jsonl(jsonl, result);
  const std::string bytes =
      cid::persist::slurp_file(csv) + cid::persist::slurp_file(jsonl);
  std::remove(csv.c_str());
  std::remove(jsonl.c_str());
  return bytes;
}

TEST(SweepResume, InterruptedGridResumesByteIdenticalAtEveryThreadCount) {
  const SweepGrid grid = resume_grid();
  SweepOptions plain;
  plain.threads = 1;
  const std::string reference = trial_output_bytes(run_sweep(grid, plain));

  for (const int threads : {1, 4}) {
    const std::string manifest =
        temp_path("resume_t" + std::to_string(threads) + ".manifest");

    // Interrupted leg: die after 7 of 20 trials.
    SweepOptions interrupted;
    interrupted.threads = threads;
    interrupted.manifest_path = manifest;
    interrupted.max_new_trials = 7;
    const SweepResult partial = run_sweep(grid, interrupted);
    EXPECT_FALSE(partial.complete);
    EXPECT_EQ(partial.ran_trials, 7u);
    EXPECT_TRUE(partial.cells.empty());  // no aggregation of a partial grid

    // Resumed leg: same manifest, no budget.
    SweepOptions resumed;
    resumed.threads = threads;
    resumed.manifest_path = manifest;
    const SweepResult complete = run_sweep(grid, resumed);
    EXPECT_TRUE(complete.complete);
    EXPECT_EQ(complete.resumed_trials, 7u);
    EXPECT_EQ(complete.ran_trials, 20u - 7u);

    EXPECT_EQ(trial_output_bytes(complete), reference)
        << "threads=" << threads;

    // A third invocation re-runs nothing and still matches.
    const SweepResult idempotent = run_sweep(grid, resumed);
    EXPECT_TRUE(idempotent.complete);
    EXPECT_EQ(idempotent.resumed_trials, 20u);
    EXPECT_EQ(idempotent.ran_trials, 0u);
    EXPECT_EQ(trial_output_bytes(idempotent), reference);

    std::remove(manifest.c_str());
  }
}

TEST(SweepResume, CellAggregatesOfResumedRunMatchUninterrupted) {
  const SweepGrid grid = resume_grid();
  SweepOptions plain;
  plain.threads = 2;
  const SweepResult reference = run_sweep(grid, plain);

  const std::string manifest = temp_path("cells.manifest");
  SweepOptions interrupted;
  interrupted.threads = 2;
  interrupted.manifest_path = manifest;
  interrupted.max_new_trials = 11;
  run_sweep(grid, interrupted);
  SweepOptions resumed;
  resumed.threads = 2;
  resumed.manifest_path = manifest;
  const SweepResult complete = run_sweep(grid, resumed);

  // Everything deterministic in the cell rows must agree exactly (wall
  // time is per-invocation by design and excluded).
  ASSERT_EQ(complete.cells.size(), reference.cells.size());
  for (std::size_t c = 0; c < reference.cells.size(); ++c) {
    const CellRow& a = reference.cells[c];
    const CellRow& b = complete.cells[c];
    EXPECT_EQ(a.key.cell, b.key.cell);
    EXPECT_EQ(a.rounds.mean, b.rounds.mean);
    EXPECT_EQ(a.rounds.median, b.rounds.median);
    EXPECT_EQ(a.rounds_sem, b.rounds_sem);
    EXPECT_EQ(a.fraction_converged, b.fraction_converged);
    EXPECT_EQ(a.mean_potential, b.mean_potential);
    EXPECT_EQ(a.mean_social_cost, b.mean_social_cost);
    EXPECT_EQ(a.mean_movers, b.mean_movers);
  }
  std::remove(manifest.c_str());
}

TEST(SweepResume, ManifestFromDifferentGridIsRejected) {
  const std::string manifest = temp_path("wronggrid.manifest");
  const SweepGrid grid = resume_grid();
  SweepOptions options;
  options.threads = 1;
  options.manifest_path = manifest;
  options.max_new_trials = 3;
  run_sweep(grid, options);

  SweepGrid other = resume_grid();
  other.dynamics.max_rounds = 12345;
  EXPECT_THROW(run_sweep(other, options), cid::persist::persist_error);
  std::remove(manifest.c_str());
}

TEST(SweepResume, ZeroBudgetRunsNothingButWritesTheManifestHeader) {
  const std::string manifest = temp_path("zerobudget.manifest");
  const SweepGrid grid = resume_grid();
  SweepOptions options;
  options.threads = 1;
  options.manifest_path = manifest;
  options.max_new_trials = 0;
  const SweepResult result = run_sweep(grid, options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.ran_trials, 0u);
  const cid::persist::ManifestContents contents =
      cid::persist::load_manifest(manifest, grid);
  EXPECT_TRUE(contents.completed.empty());
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace cid::sweep
