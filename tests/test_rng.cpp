// Unit and statistical tests for the RNG substrate. Exactness of the
// binomial/multinomial samplers is load-bearing for the whole reproduction
// (the aggregate engine's round law is built out of them), so the moment and
// goodness-of-fit tolerances here are deliberately tight.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cid {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference values from the public-domain splitmix64 with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(Xoshiro256pp, DeterministicPerSeed) {
  Xoshiro256pp a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    // Different seeds should diverge almost surely.
    if (va != c()) return;
  }
  FAIL() << "seeds 123 and 124 produced identical 100-draw streams";
}

TEST(Xoshiro256pp, JumpChangesStream) {
  Xoshiro256pp a(7), b(7);
  b.jump();
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++agree;
  }
  EXPECT_LT(agree, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsAndMean) {
  Rng rng(2);
  const std::uint64_t bound = 17;
  double sum = 0.0;
  const int kDraws = 200000;
  std::vector<double> counts(bound, 0.0);
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.uniform_int(bound);
    ASSERT_LT(v, bound);
    counts[v] += 1.0;
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / kDraws, 8.0, 0.05);
  // Chi-square uniformity: 16 dof, reject-at-1e-6 threshold ~ 56.
  std::vector<double> expected(bound,
                               static_cast<double>(kDraws) /
                                   static_cast<double>(bound));
  EXPECT_LT(chi_square_statistic(counts, expected), 56.0);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(4);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(100, 0.0), 0);
  EXPECT_EQ(rng.binomial(100, 1.0), 100);
  EXPECT_THROW(rng.binomial(-1, 0.5), invariant_violation);
}

struct BinomialCase {
  std::int64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  // Covers all three sampler regimes: Bernoulli sum (n<=32), inversion
  // (np < 12), and BTRS (np >= 12), plus the p > 1/2 reflection.
  const auto [n, p] = GetParam();
  Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(n));
  const int kDraws = 60000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const auto k = rng.binomial(n, p);
    ASSERT_GE(k, 0);
    ASSERT_LE(k, n);
    const auto kd = static_cast<double>(k);
    sum += kd;
    sumsq += kd * kd;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  const double true_mean = static_cast<double>(n) * p;
  const double true_var = static_cast<double>(n) * p * (1.0 - p);
  const double mean_tol = 6.0 * std::sqrt(true_var / kDraws) + 1e-9;
  EXPECT_NEAR(mean, true_mean, mean_tol) << "n=" << n << " p=" << p;
  EXPECT_NEAR(var, true_var, 0.08 * true_var + 0.01) << "n=" << n
                                                     << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMoments,
    ::testing::Values(BinomialCase{10, 0.3},        // Bernoulli sum
                      BinomialCase{31, 0.5},        // Bernoulli sum boundary
                      BinomialCase{1000, 0.001},    // inversion, tiny mean
                      BinomialCase{500, 0.01},      // inversion
                      BinomialCase{200, 0.4},       // BTRS
                      BinomialCase{100000, 0.25},   // BTRS large n
                      BinomialCase{1000, 0.97},     // reflection + inversion
                      BinomialCase{5000, 0.75}));   // reflection + BTRS

TEST(Rng, BinomialDistributionChiSquare) {
  // Goodness-of-fit for Binomial(40, 0.3) over a binned support.
  Rng rng(99);
  const std::int64_t n = 40;
  const double p = 0.3;
  const int kDraws = 100000;
  std::vector<double> observed(41, 0.0);
  for (int i = 0; i < kDraws; ++i) {
    observed[static_cast<std::size_t>(rng.binomial(n, p))] += 1.0;
  }
  // Exact pmf via recurrence.
  std::vector<double> pmf(41);
  pmf[0] = std::pow(1.0 - p, static_cast<double>(n));
  for (int k = 1; k <= 40; ++k) {
    pmf[static_cast<std::size_t>(k)] =
        pmf[static_cast<std::size_t>(k - 1)] * (p / (1.0 - p)) *
        static_cast<double>(n - k + 1) / static_cast<double>(k);
  }
  // Merge bins with expectation < 10 into neighbours (standard practice).
  std::vector<double> obs_binned, exp_binned;
  double o_acc = 0.0, e_acc = 0.0;
  for (int k = 0; k <= 40; ++k) {
    o_acc += observed[static_cast<std::size_t>(k)];
    e_acc += pmf[static_cast<std::size_t>(k)] * kDraws;
    if (e_acc >= 10.0) {
      obs_binned.push_back(o_acc);
      exp_binned.push_back(e_acc);
      o_acc = e_acc = 0.0;
    }
  }
  if (e_acc > 0.0) {
    obs_binned.back() += o_acc;
    exp_binned.back() += e_acc;
  }
  const double stat = chi_square_statistic(obs_binned, exp_binned);
  // dof ~ bins-1 (~20); 1e-6-level rejection threshold ~ 60.
  EXPECT_LT(stat, 60.0);
}

TEST(Rng, MultinomialConservesTrialsAndMeans) {
  Rng rng(5);
  const std::vector<double> probs{0.1, 0.2, 0.3, 0.15};  // sums to 0.75
  const std::int64_t n = 10000;
  std::vector<double> mean(probs.size(), 0.0);
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    const auto counts = rng.multinomial(n, probs);
    ASSERT_EQ(counts.size(), probs.size());
    std::int64_t total = 0;
    for (std::size_t j = 0; j < counts.size(); ++j) {
      ASSERT_GE(counts[j], 0);
      total += counts[j];
      mean[j] += static_cast<double>(counts[j]);
    }
    ASSERT_LE(total, n);  // residual mass stays put
  }
  for (std::size_t j = 0; j < probs.size(); ++j) {
    EXPECT_NEAR(mean[j] / kDraws, static_cast<double>(n) * probs[j],
                0.02 * static_cast<double>(n) * probs[j] + 1.0);
  }
}

TEST(Rng, MultinomialFullMassConservesExactly) {
  Rng rng(6);
  const std::vector<double> probs{0.25, 0.25, 0.25, 0.25};
  for (int i = 0; i < 200; ++i) {
    const auto counts = rng.multinomial(1000, probs);
    std::int64_t total = 0;
    for (auto c : counts) total += c;
    EXPECT_EQ(total, 1000);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(7);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
  EXPECT_THROW(rng.categorical(std::vector<double>{}), invariant_violation);
  EXPECT_THROW(rng.categorical(std::vector<double>{0.0, 0.0}),
               invariant_violation);
}

TEST(Rng, SplitProducesDecorrelatedStreams) {
  Rng parent(11);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++agree;
  }
  EXPECT_EQ(agree, 0);
}

// ---- RNG durability (the persistence subsystem's contract) -----------------
//
// state()/set_state must make the stream durable: a generator saved at ANY
// point and restored elsewhere continues the identical draw sequence. The
// binomial sampler makes this non-trivial to state — it switches between
// three regimes (Bernoulli summation, CDF inversion, BTRS rejection) that
// consume different numbers of uniforms per variate, and BTRS consumes a
// *data-dependent* number (rejection). Durability must hold mid-sequence
// and across every regime boundary regardless.

TEST(RngDurability, StateRoundTripContinuesTheRawStream) {
  Xoshiro256pp gen(2024);
  for (int i = 0; i < 1000; ++i) (void)gen();
  const auto saved = gen.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 256; ++i) expected.push_back(gen());
  Xoshiro256pp restored(1);  // deliberately different seed
  restored.set_state(saved);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(restored(), expected[i]);
}

TEST(RngDurability, AllZeroStateIsClampedOffTheFixedPoint) {
  Xoshiro256pp gen(1);
  gen.set_state({0, 0, 0, 0});
  // The all-zero state is a fixed point of xoshiro; set_state must not
  // allow a (corrupt) snapshot to freeze the stream at zero forever.
  bool nonzero = false;
  for (int i = 0; i < 8; ++i) nonzero = nonzero || gen() != 0;
  EXPECT_TRUE(nonzero);
}

TEST(RngDurability, SaveRestoreMidBinomialSequenceAcrossAllRegimes) {
  // A schedule that walks every sampler regime, including both sides of
  // the BTRS/inversion boundary at mean = 12 (n * p around 12 with
  // n > 32): inversion just below, BTRS just above.
  const std::vector<std::pair<std::int64_t, double>> schedule = {
      {8, 0.5},      // direct Bernoulli summation (n <= 32)
      {1000, 0.005}, // inversion (mean 5 < 12)
      {1000, 0.0119},// inversion, just below the boundary (mean 11.9)
      {1000, 0.0121},// BTRS, just above the boundary (mean 12.1)
      {1000, 0.3},   // BTRS, deep rejection territory
      {50, 0.9},     // symmetry flip (p > 1/2) on top of BTRS/inversion
  };
  Rng rng(0xD00D);
  // Burn in partway through the schedule, then save MID-sequence.
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const auto& [n, p] : schedule) (void)rng.binomial(n, p);
  }
  const auto saved = rng.state();
  Rng restored(1);
  restored.set_state(saved);
  // The continuation must be identical draw by draw, for many passes —
  // long enough that any desynchronization (an off-by-one uniform in a
  // rejection loop, say) would surface.
  for (int repeat = 0; repeat < 50; ++repeat) {
    for (const auto& [n, p] : schedule) {
      EXPECT_EQ(restored.binomial(n, p), rng.binomial(n, p))
          << "repeat " << repeat << " n=" << n << " p=" << p;
    }
  }
  EXPECT_EQ(restored.state(), rng.state());
}

TEST(RngDurability, SaveRestoreMidMultinomialSequence) {
  const std::vector<double> probs = {0.25, 0.125, 0.5, 0.0625};
  Rng rng(777);
  for (int i = 0; i < 10; ++i) (void)rng.multinomial(5000, probs);
  const auto saved = rng.state();
  Rng restored(1);
  restored.set_state(saved);
  for (int i = 0; i < 100; ++i) {
    // Vary n so the conditional binomials cross regimes as mass depletes.
    const std::int64_t n = 17 + 311 * i;
    EXPECT_EQ(restored.multinomial(n, probs), rng.multinomial(n, probs))
        << "draw " << i;
  }
  EXPECT_EQ(restored.state(), rng.state());
}

}  // namespace
}  // namespace cid
