// Tests for the asymmetric (multi-commodity) extension — the paper's §3
// remark that all convergence machinery carries over when players sample
// within their own strategy-space class.
#include <gtest/gtest.h>

#include <array>

#include "game/asymmetric.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

/// Two commodities over 3 shared links: class 0 may use {0,1}, class 1 may
/// use {1,2}. Link 1 is contested.
AsymmetricGame two_commodity_game(std::int64_t n0, std::int64_t n1) {
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0),
                              make_linear(1.0)};
  std::vector<PlayerClass> classes(2);
  classes[0].strategies = {{0}, {1}};
  classes[0].num_players = n0;
  classes[1].strategies = {{1}, {2}};
  classes[1].num_players = n1;
  return AsymmetricGame(std::move(fns), std::move(classes));
}

TEST(AsymmetricGame, ValidatesConstruction) {
  std::vector<LatencyPtr> fns{make_linear(1.0)};
  EXPECT_THROW(AsymmetricGame({}, {PlayerClass{{{0}}, 1}}),
               invariant_violation);
  EXPECT_THROW(AsymmetricGame(fns, {}), invariant_violation);
  EXPECT_THROW(AsymmetricGame(fns, {PlayerClass{{{0}}, 0}}),
               invariant_violation);
  EXPECT_THROW(AsymmetricGame(fns, {PlayerClass{{{5}}, 1}}),
               invariant_violation);
  EXPECT_THROW(AsymmetricGame(fns, {PlayerClass{{}, 1}}),
               invariant_violation);
}

TEST(AsymmetricGame, BasicAccessors) {
  const auto game = two_commodity_game(10, 6);
  EXPECT_EQ(game.num_classes(), 2);
  EXPECT_EQ(game.num_players(), 16);
  EXPECT_EQ(game.num_resources(), 3);
  EXPECT_DOUBLE_EQ(game.elasticity(), 1.0);
  EXPECT_DOUBLE_EQ(game.nu(), 1.0);
}

TEST(AsymmetricState, CongestionAggregatesAcrossClasses) {
  const auto game = two_commodity_game(10, 6);
  const AsymmetricState x(game, {{4, 6}, {5, 1}});
  EXPECT_EQ(x.congestion(0), 4);
  EXPECT_EQ(x.congestion(1), 11);  // 6 from class 0 + 5 from class 1
  EXPECT_EQ(x.congestion(2), 1);
  x.check_consistent(game);
  EXPECT_THROW(AsymmetricState(game, {{4, 5}, {5, 1}}), invariant_violation);
}

TEST(AsymmetricState, Initializers) {
  const auto game = two_commodity_game(11, 7);
  Rng rng(1);
  const auto u = AsymmetricState::uniform_random(game, rng);
  u.check_consistent(game);
  const auto e = AsymmetricState::spread_evenly(game);
  EXPECT_EQ(e.count(0, 0), 6);
  EXPECT_EQ(e.count(0, 1), 5);
  EXPECT_EQ(e.count(1, 0), 4);
  EXPECT_EQ(e.count(1, 1), 3);
}

TEST(AsymmetricGame, LatenciesSeeSharedCongestion) {
  const auto game = two_commodity_game(10, 6);
  const AsymmetricState x(game, {{4, 6}, {5, 1}});
  // Class-0 strategy 1 = link 1 at load 11.
  EXPECT_DOUBLE_EQ(game.strategy_latency(x, 0, 1), 11.0);
  // Class-1 player moving 0→1 (link1 → link2): sees link 2 at load 2.
  EXPECT_DOUBLE_EQ(game.expost_latency(x, 1, 0, 1), 2.0);
  // Class-0 player moving 0→1 joins the contested link: load 12.
  EXPECT_DOUBLE_EQ(game.expost_latency(x, 0, 0, 1), 12.0);
}

TEST(AsymmetricGame, RosenthalIdentityAcrossClasses) {
  const auto game = two_commodity_game(10, 6);
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    AsymmetricState x = AsymmetricState::uniform_random(game, rng);
    const auto c = static_cast<std::int32_t>(rng.uniform_int(2));
    const auto from = static_cast<StrategyId>(rng.uniform_int(2));
    const StrategyId to = 1 - from;
    if (x.count(c, from) == 0) continue;
    const double phi_before = game.potential(x);
    const double expost = game.expost_latency(x, c, from, to);
    const double before = game.strategy_latency(x, c, from);
    const std::array<ClassMigration, 1> mv{ClassMigration{c, from, to, 1}};
    x.apply(game, mv);
    EXPECT_NEAR(game.potential(x) - phi_before, expost - before, 1e-9);
  }
}

TEST(AsymmetricMoveProbability, ClassLocalSampling) {
  const auto game = two_commodity_game(10, 6);
  const AsymmetricState x(game, {{8, 2}, {5, 1}});
  AsymmetricImitationParams params;
  params.lambda = 0.25;
  params.nu_cutoff = false;
  // Class-0 player on link 0 (latency 8) copying link 1 (ex-post 8):
  // loads: link0=8, link1=7 (2 + 5), ex-post 8 → no strict improvement.
  EXPECT_DOUBLE_EQ(
      asymmetric_move_probability(game, x, params, 0, 0, 1), 0.0);
  // Class-1 player on link 1 (latency 7) copying link 2 (ex-post 2): gain 5.
  // Sampling: 1 same-class player on strategy 1, pool 5 → 1/5.
  const double p = asymmetric_move_probability(game, x, params, 1, 0, 1);
  EXPECT_NEAR(p, (1.0 / 5.0) * 0.25 * (7.0 - 2.0) / 7.0, 1e-12);
  // Unused target in class: zero.
  const AsymmetricState y(game, {{8, 2}, {6, 0}});
  EXPECT_DOUBLE_EQ(
      asymmetric_move_probability(game, y, params, 1, 0, 1), 0.0);
}

TEST(AsymmetricDynamics, RoundConservesClassMass) {
  const auto game = two_commodity_game(200, 100);
  Rng rng(3);
  AsymmetricState x(game, {{180, 20}, {90, 10}});
  AsymmetricImitationParams params;
  for (int round = 0; round < 30; ++round) {
    step_asymmetric_round(game, x, params, rng);
    x.check_consistent(game);
  }
}

TEST(AsymmetricDynamics, PotentialIsSupermartingaleEmpirically) {
  const auto game = two_commodity_game(300, 200);
  AsymmetricImitationParams params;
  params.lambda = 0.5;
  double total_drift = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    Rng rng(100 + static_cast<std::uint64_t>(trial));
    AsymmetricState x(game, {{250, 50}, {30, 170}});
    const double phi0 = game.potential(x);
    for (int round = 0; round < 20; ++round) {
      step_asymmetric_round(game, x, params, rng);
    }
    total_drift += game.potential(x) - phi0;
  }
  EXPECT_LT(total_drift / 40.0, 0.0);
}

TEST(AsymmetricDynamics, ConvergesToImitationStable) {
  const auto game = two_commodity_game(200, 100);
  Rng rng(4);
  AsymmetricState x(game, {{199, 1}, {99, 1}});
  AsymmetricImitationParams params;
  bool stable = false;
  for (int round = 0; round < 20000 && !stable; ++round) {
    step_asymmetric_round(game, x, params, rng);
    stable = is_asymmetric_imitation_stable(game, x, game.nu());
  }
  EXPECT_TRUE(stable);
  x.check_consistent(game);
}

TEST(AsymmetricEquilibrium, NashDetection) {
  const auto game = two_commodity_game(4, 4);
  // Loads: link0=2, link1=2+2=4... balance: class0 {2,2}, class1 {2,2} →
  // link1 has 4: class-0 player on link1 pays 4, moving to link0 ex-post 3:
  // not Nash. A Nash split pushes players off the contested link.
  EXPECT_FALSE(is_asymmetric_nash(game, AsymmetricState(game, {{2, 2},
                                                               {2, 2}})));
  // class0 {3,1}, class1 {1,3}: loads 3, 2, 3. Check: class-0 on link0
  // (3) → link1 ex-post 3: no gain. class-0 on link1 (2) → link0 ex-post
  // 4: no. class-1 on link1 (2): → link2 ex-post 4: no. class-1 on link2
  // (3) → link1 ex-post 3: no. Nash.
  EXPECT_TRUE(is_asymmetric_nash(game, AsymmetricState(game, {{3, 1},
                                                              {1, 3}})));
  // Nash implies imitation-stable.
  EXPECT_TRUE(is_asymmetric_imitation_stable(
      game, AsymmetricState(game, {{3, 1}, {1, 3}}), 0.0));
}

TEST(AsymmetricDynamics, SinglePlayerClassNeverMoves) {
  // A class with one player has nobody to imitate.
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0)};
  std::vector<PlayerClass> classes(1);
  classes[0].strategies = {{0}, {1}};
  classes[0].num_players = 1;
  const AsymmetricGame game(std::move(fns), std::move(classes));
  const AsymmetricState x(game, {{1, 0}});
  AsymmetricImitationParams params;
  params.nu_cutoff = false;
  EXPECT_DOUBLE_EQ(
      asymmetric_move_probability(game, x, params, 0, 0, 1), 0.0);
}

}  // namespace
}  // namespace cid
