#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/paths.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

TEST(Digraph, BasicConstruction) {
  Digraph g(3);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  const EdgeId e2 = g.add_edge(0, 1);  // parallel edge allowed
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.edge(e0).to, 1);
  EXPECT_EQ(g.edge(e1).from, 1);
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.out_edges(0)[1], e2);
  EXPECT_THROW(g.add_edge(0, 0), invariant_violation);
  EXPECT_THROW(g.add_edge(0, 5), invariant_violation);
  EXPECT_THROW(g.edge(99), invariant_violation);
}

TEST(Paths, ParallelLinksEnumerateAllEdges) {
  const auto net = make_parallel_links(5);
  const auto paths = enumerate_st_paths(net.graph, net.source, net.sink);
  EXPECT_EQ(paths.size(), 5u);
  for (const auto& p : paths) EXPECT_EQ(p.size(), 1u);
}

TEST(Paths, BraessHasThreePaths) {
  const auto net = make_braess_network();
  const auto paths = enumerate_st_paths(net.graph, net.source, net.sink);
  EXPECT_EQ(paths.size(), 3u);
  EXPECT_EQ(max_path_length(paths), 3u);  // s->u->v->t
}

TEST(Paths, LayeredCountsMatchFormula) {
  const auto net = make_layered_network(3, 2);
  const auto paths = enumerate_st_paths(net.graph, net.source, net.sink);
  // width^depth routes through layers.
  EXPECT_EQ(paths.size(), 9u);
  for (const auto& p : paths) EXPECT_EQ(p.size(), 3u);
}

TEST(Paths, RespectsMaxPathsCap) {
  const auto net = make_layered_network(4, 3);  // 64 paths
  PathEnumerationOptions opts;
  opts.max_paths = 10;
  EXPECT_THROW(enumerate_st_paths(net.graph, net.source, net.sink, opts),
               invariant_violation);
}

TEST(Paths, RespectsMaxLength) {
  const auto net = make_braess_network();
  PathEnumerationOptions opts;
  opts.max_length = 2;
  const auto paths =
      enumerate_st_paths(net.graph, net.source, net.sink, opts);
  EXPECT_EQ(paths.size(), 2u);  // the 3-edge bridge path is pruned
}

TEST(Paths, AvoidsCycles) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // back edge creates a cycle
  g.add_edge(1, 2);
  const auto paths = enumerate_st_paths(g, 0, 2);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 2u);
}

TEST(Paths, RejectsBadEndpoints) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(enumerate_st_paths(g, 0, 0), invariant_violation);
  EXPECT_THROW(enumerate_st_paths(g, 0, 9), invariant_violation);
}

TEST(Generators, SeriesParallelAlwaysHasPath) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const auto net = make_series_parallel(15, rng);
    const auto paths = enumerate_st_paths(net.graph, net.source, net.sink);
    EXPECT_GE(paths.size(), 1u);
    // Series-parallel edge count: starts at 1, +1 per step.
    EXPECT_EQ(net.graph.num_edges(), 16);
  }
}

TEST(Generators, RejectInvalidSizes) {
  EXPECT_THROW(make_parallel_links(0), invariant_violation);
  EXPECT_THROW(make_layered_network(0, 1), invariant_violation);
  EXPECT_THROW(make_layered_network(1, 0), invariant_violation);
}

}  // namespace
}  // namespace cid
