#include <gtest/gtest.h>

#include <array>

#include "game/builders.hpp"
#include "game/state.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

TEST(State, ConstructionValidates) {
  const auto game = make_uniform_links_game(3, make_linear(1.0), 10);
  EXPECT_NO_THROW(State(game, {4, 3, 3}));
  EXPECT_THROW(State(game, {4, 3}), invariant_violation);       // size
  EXPECT_THROW(State(game, {4, 3, 4}), invariant_violation);    // sum
  EXPECT_THROW(State(game, {-1, 8, 3}), invariant_violation);   // negative
}

TEST(State, CongestionDerivedFromCounts) {
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0),
                              make_linear(1.0)};
  CongestionGame game(std::move(fns), {{0, 1}, {1, 2}}, 5);
  const State x(game, {3, 2});
  EXPECT_EQ(x.congestion(0), 3);
  EXPECT_EQ(x.congestion(1), 5);
  EXPECT_EQ(x.congestion(2), 2);
  x.check_consistent(game);
}

TEST(State, Initializers) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 10);
  Rng rng(1);
  const State u = State::uniform_random(game, rng);
  u.check_consistent(game);

  const State a = State::all_on(game, 2);
  EXPECT_EQ(a.count(2), 10);
  EXPECT_EQ(a.support(), (std::vector<StrategyId>{2}));

  const State e = State::spread_evenly(game);
  EXPECT_EQ(e.count(0), 3);  // 10 = 3+3+2+2
  EXPECT_EQ(e.count(1), 3);
  EXPECT_EQ(e.count(2), 2);
  EXPECT_EQ(e.count(3), 2);
}

TEST(State, UniformRandomIsApproximatelyBalanced) {
  const auto game = make_uniform_links_game(5, make_linear(1.0), 100000);
  Rng rng(2);
  const State x = State::uniform_random(game, rng);
  for (StrategyId p = 0; p < 5; ++p) {
    EXPECT_NEAR(static_cast<double>(x.count(p)), 20000.0, 1000.0);
  }
}

TEST(State, ApplyMovesMass) {
  const auto game = make_uniform_links_game(3, make_linear(1.0), 10);
  State x(game, {5, 5, 0});
  const std::array<Migration, 2> moves{Migration{0, 2, 2},
                                       Migration{1, 0, 1}};
  x.apply(game, moves);
  EXPECT_EQ(x.count(0), 4);
  EXPECT_EQ(x.count(1), 4);
  EXPECT_EQ(x.count(2), 2);
  x.check_consistent(game);
}

TEST(State, ApplyValidatesAgainstPreState) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  State x(game, {6, 4});
  // 7 out of strategy 0 is infeasible even though 0 also receives 5.
  const std::array<Migration, 2> moves{Migration{0, 1, 7},
                                       Migration{1, 0, 4}};
  EXPECT_THROW(x.apply(game, moves), invariant_violation);
  // Unchanged after failed apply (validation happens before mutation).
  EXPECT_EQ(x.count(0), 6);
  x.check_consistent(game);
}

TEST(State, ApplyRejectsMalformedMigrations) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 4);
  State x(game, {2, 2});
  EXPECT_THROW(
      x.apply(game, std::array<Migration, 1>{Migration{0, 0, 1}}),
      invariant_violation);
  EXPECT_THROW(
      x.apply(game, std::array<Migration, 1>{Migration{0, 1, -2}}),
      invariant_violation);
  EXPECT_THROW(
      x.apply(game, std::array<Migration, 1>{Migration{0, 9, 1}}),
      invariant_violation);
}

TEST(State, ApplyConcurrentSwapIsOrderFree) {
  // A full swap 0->1 and 1->0 is feasible concurrently.
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  State x(game, {6, 4});
  const std::array<Migration, 2> moves{Migration{0, 1, 6},
                                       Migration{1, 0, 4}};
  x.apply(game, moves);
  EXPECT_EQ(x.count(0), 4);
  EXPECT_EQ(x.count(1), 6);
}

TEST(State, SharedResourceCongestionCancels) {
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0),
                              make_linear(1.0)};
  CongestionGame game(std::move(fns), {{0, 1}, {1, 2}}, 5);
  State x(game, {3, 2});
  x.apply(game, std::array<Migration, 1>{Migration{0, 1, 2}});
  EXPECT_EQ(x.congestion(0), 1);
  EXPECT_EQ(x.congestion(1), 5);  // shared resource unchanged
  EXPECT_EQ(x.congestion(2), 4);
  x.check_consistent(game);
}

TEST(State, EqualityByCounts) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 4);
  EXPECT_TRUE(State(game, {2, 2}) == State(game, {2, 2}));
  EXPECT_FALSE(State(game, {3, 1}) == State(game, {2, 2}));
}

}  // namespace
}  // namespace cid
