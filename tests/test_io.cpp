#include <gtest/gtest.h>

#include <cstdio>

#include "game/builders.hpp"
#include "game/io.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

void expect_games_equal(const CongestionGame& a, const CongestionGame& b) {
  ASSERT_EQ(a.num_players(), b.num_players());
  ASSERT_EQ(a.num_resources(), b.num_resources());
  ASSERT_EQ(a.num_strategies(), b.num_strategies());
  for (StrategyId s = 0; s < a.num_strategies(); ++s) {
    EXPECT_EQ(a.strategy(s), b.strategy(s));
  }
  // Latency equality via sampled values.
  for (Resource e = 0; e < a.num_resources(); ++e) {
    for (double x : {0.0, 1.0, 2.5, 7.0, 100.0}) {
      EXPECT_NEAR(a.latency(e).value(x), b.latency(e).value(x),
                  1e-12 * (1.0 + a.latency(e).value(x)))
          << "resource " << e << " at x=" << x;
    }
  }
  EXPECT_DOUBLE_EQ(a.elasticity(), b.elasticity());
  EXPECT_DOUBLE_EQ(a.nu(), b.nu());
}

TEST(GameIo, RoundTripsAllLatencyClasses) {
  std::vector<LatencyPtr> fns{
      make_constant(3.5),
      make_monomial(2.0, 3.0),
      make_polynomial({1.0, 0.0, 0.25}),
      make_exponential(2.0, 0.125),
      make_scaled(make_monomial(1.5, 2.0), 100),
  };
  CongestionGame game(std::move(fns), {{0, 1}, {1, 2, 3}, {4}}, 42);
  const std::string text = serialize_game(game);
  const CongestionGame parsed = parse_game(text);
  expect_games_equal(game, parsed);
  // Serialization is stable (idempotent round trip).
  EXPECT_EQ(serialize_game(parsed), text);
}

TEST(GameIo, RoundTripsNetworkGame) {
  const auto game = make_uniform_links_game(6, make_linear(1.25), 1000);
  expect_games_equal(game, parse_game(serialize_game(game)));
}

TEST(GameIo, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_game(""), invariant_violation);
  EXPECT_THROW(parse_game("not-a-game v1\n"), invariant_violation);
  EXPECT_THROW(parse_game("cid-game v2\n"), invariant_violation);
  EXPECT_THROW(parse_game("cid-game v1\nplayers 5\n"), invariant_violation);
  EXPECT_THROW(parse_game("cid-game v1\nplayers 5\nresources 1\n"
                          "latency bogus 1\n"),
               invariant_violation);
  EXPECT_THROW(parse_game("cid-game v1\nplayers 5\nresources 1\n"
                          "latency constant 1\nstrategies 1\n"
                          "strategy 1 0\n"),  // missing 'end'
               invariant_violation);
  // Semantic validation still applies (resource out of range).
  EXPECT_THROW(parse_game("cid-game v1\nplayers 5\nresources 1\n"
                          "latency constant 1\nstrategies 1\n"
                          "strategy 1 3\nend\n"),
               invariant_violation);
}

TEST(GameIo, ParseErrorsMentionLineNumbers) {
  try {
    parse_game("cid-game v1\nplayers 5\nresources 1\nlatency bogus 1\n");
    FAIL() << "expected parse error";
  } catch (const invariant_violation& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(StateIo, RoundTrips) {
  const auto game = make_uniform_links_game(4, make_linear(1.0), 10);
  const State x(game, {4, 3, 2, 1});
  const State parsed = parse_state(game, serialize_state(x));
  EXPECT_TRUE(x == parsed);
}

TEST(StateIo, ValidatesDimensionAndMass) {
  const auto game = make_uniform_links_game(3, make_linear(1.0), 10);
  EXPECT_THROW(parse_state(game, "cid-state v1\ncounts 2 5 5\n"),
               invariant_violation);
  EXPECT_THROW(parse_state(game, "cid-state v1\ncounts 3 5 5 5\n"),
               invariant_violation);  // sums to 15 != 10
}

TEST(GameIo, FileRoundTrip) {
  const auto game = make_uniform_links_game(3, make_monomial(2.0, 2.0), 64);
  const std::string path = "/tmp/cid_io_test_game.txt";
  save_game(game, path);
  const CongestionGame loaded = load_game(path);
  expect_games_equal(game, loaded);
  std::remove(path.c_str());
  EXPECT_THROW(load_game("/nonexistent/dir/game.txt"), invariant_violation);
}

}  // namespace
}  // namespace cid
