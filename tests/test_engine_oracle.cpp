// Oracle equivalence for the batched round kernel.
//
// The engine's hot path (cached LatencyContext + batched
// Protocol::fill_move_probabilities + workspace draws) must be BITWISE
// indistinguishable from the per-pair reference path (one virtual
// move_probability call per (from, to) pair, no caching):
//
//   1. round level — draw_round vs draw_round_reference produce identical
//      Migration lists AND consume the RNG stream identically, sustained
//      over many applied rounds (so the incremental cache refresh is
//      exercised, not just the initial full build), for all three
//      protocols x both engine modes x singleton and network games;
//   2. probability level — fill_move_probabilities rows match the
//      move_probability oracle bit-for-bit, including after incremental
//      refreshes;
//   3. trial level — every registry scenario family produces an identical
//      TrialOutcome with DynamicsConfig::reference_kernel on and off: the
//      symmetric families audit the batched kernel + cached stop
//      predicates, the asymmetric families the batched class-local kernel
//      (dynamics/asymmetric_engine.hpp) + cached class-wise predicates,
//      and threshold-lb proves the flag is inert for sequential dynamics;
//   4. persistence level — a batched-kernel trial that is checkpointed,
//      killed, and resumed bitwise-matches an uninterrupted REFERENCE-
//      kernel trial, so checkpoint artifacts are interchangeable between
//      kernels (symmetric AND asymmetric snapshot codecs);
//   5. thread level — RunOptions/DynamicsConfig::row_threads ∈ {1, 2, 4}
//      produce byte-identical trials and RNG streams (the parallel row
//      fills are pure; the draw phase is serial either way).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dynamics/asymmetric_engine.hpp"
#include "dynamics/engine.hpp"
#include "game/asymmetric.hpp"
#include "game/builders.hpp"
#include "game/latency_context.hpp"
#include "protocols/combined.hpp"
#include "protocols/exploration.hpp"
#include "protocols/imitation.hpp"
#include "sweep/scenario.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

CongestionGame network_game_k8(std::int64_t n) {
  // 2^3 = 8 overlapping paths: non-singleton, so the ex-post merge walks
  // genuinely shared resources.
  const auto net = make_layered_network(2, 3);
  Rng latency_rng(11);
  std::vector<LatencyPtr> fns;
  for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
    fns.push_back(make_monomial(0.5 + latency_rng.uniform(),
                                latency_rng.bernoulli(0.5) ? 1.0 : 2.0));
  }
  return make_network_game(net, std::move(fns), n);
}

std::vector<std::unique_ptr<Protocol>> all_protocols() {
  std::vector<std::unique_ptr<Protocol>> protocols;
  protocols.push_back(std::make_unique<ImitationProtocol>());
  ImitationParams virtual_params;
  virtual_params.virtual_agents = 2;  // innovative imitation reaches empties
  protocols.push_back(std::make_unique<ImitationProtocol>(virtual_params));
  protocols.push_back(std::make_unique<ExplorationProtocol>());
  protocols.push_back(std::make_unique<CombinedProtocol>(
      ImitationParams{}, ExplorationParams{}, 0.5));
  return protocols;
}

void expect_rounds_identical(const CongestionGame& game, EngineMode mode,
                             std::int64_t rounds, std::uint64_t seed) {
  for (const auto& protocol : all_protocols()) {
    SCOPED_TRACE(protocol->name());
    // Two independent copies of everything; only the kernel differs.
    Rng batched_rng(seed);
    Rng reference_rng(seed);
    State batched_x = State::uniform_random(game, batched_rng);
    State reference_x = State::uniform_random(game, reference_rng);
    RoundWorkspace ws;
    RoundResult batched;
    for (std::int64_t round = 0; round < rounds; ++round) {
      draw_round(game, batched_x, *protocol, batched_rng, mode, ws, batched);
      const RoundResult reference = draw_round_reference(
          game, reference_x, *protocol, reference_rng, mode);
      ASSERT_EQ(batched.moves, reference.moves) << "round " << round;
      ASSERT_EQ(batched.movers, reference.movers) << "round " << round;
      // Identical RNG stream consumption, not just identical output.
      ASSERT_EQ(batched_rng.state(), reference_rng.state())
          << "round " << round;
      // Apply through the incremental-cache path on the batched side and
      // the plain path on the reference side.
      batched_x.apply(game, batched.moves, ws.apply_scratch);
      ws.ctx.refresh(ws.apply_scratch.touched);
      reference_x.apply(game, reference.moves);
      ASSERT_TRUE(batched_x == reference_x) << "round " << round;
    }
  }
}

TEST(EngineOracle, AggregateRoundsBitwiseIdenticalSingleton) {
  expect_rounds_identical(make_monomial_fan_game(12, 1.0, 1.0, 5000),
                          EngineMode::kAggregate, 60, 21);
}

TEST(EngineOracle, AggregateRoundsBitwiseIdenticalNetwork) {
  expect_rounds_identical(network_game_k8(4000), EngineMode::kAggregate, 60,
                          22);
}

TEST(EngineOracle, PerPlayerRoundsBitwiseIdenticalSingleton) {
  expect_rounds_identical(make_monomial_fan_game(12, 1.0, 1.0, 600),
                          EngineMode::kPerPlayer, 30, 23);
}

TEST(EngineOracle, PerPlayerRoundsBitwiseIdenticalNetwork) {
  expect_rounds_identical(network_game_k8(400), EngineMode::kPerPlayer, 30,
                          24);
}

TEST(EngineOracle, BatchedRowsMatchMoveProbabilityOracle) {
  const auto game = network_game_k8(3000);
  const auto k = static_cast<std::size_t>(game.num_strategies());
  Rng rng(31);
  State x = State::uniform_random(game, rng);
  LatencyContext ctx;
  ctx.reset(game, x);
  ApplyScratch scratch;
  const ImitationProtocol imitation;
  for (int round = 0; round < 25; ++round) {
    for (const auto& protocol : all_protocols()) {
      SCOPED_TRACE(protocol->name());
      std::vector<double> row(k);
      for (StrategyId from = 0; from < game.num_strategies(); ++from) {
        protocol->fill_move_probabilities(game, ctx, from, row);
        for (StrategyId to = 0; to < game.num_strategies(); ++to) {
          const double oracle =
              to == from ? 0.0
                         : protocol->move_probability(game, x, from, to);
          // Bitwise: EXPECT_EQ on doubles, not EXPECT_NEAR.
          ASSERT_EQ(row[static_cast<std::size_t>(to)], oracle)
              << "round " << round << " pair " << from << "->" << to;
        }
      }
    }
    // Mutate the state through a real draw and refresh incrementally, so
    // later iterations audit refreshed cache entries rather than the
    // initial full build.
    const RoundResult rr =
        draw_round(game, x, imitation, rng, EngineMode::kAggregate);
    x.apply(game, rr.moves, scratch);
    ctx.refresh(scratch.touched);
  }
}

TEST(EngineOracle, RunDynamicsMatchesAcrossKernels) {
  // Whole-run equivalence incl. stop predicate and mover accounting.
  const auto game = make_monomial_fan_game(10, 2.0, 1.0, 20000);
  const ImitationProtocol protocol;
  for (EngineMode mode : {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    RunOptions options;
    options.max_rounds = mode == EngineMode::kAggregate ? 200 : 40;
    options.mode = mode;
    Rng batched_rng(7);
    State batched_x = State::uniform_random(game, batched_rng);
    const RunResult batched = run_dynamics(game, batched_x, protocol,
                                           batched_rng, options, nullptr);
    options.reference_kernel = true;
    Rng reference_rng(7);
    State reference_x = State::uniform_random(game, reference_rng);
    const RunResult reference = run_dynamics(
        game, reference_x, protocol, reference_rng, options, nullptr);
    EXPECT_EQ(batched.rounds, reference.rounds);
    EXPECT_EQ(batched.total_movers, reference.total_movers);
    EXPECT_TRUE(batched_x == reference_x);
    EXPECT_EQ(batched_rng.state(), reference_rng.state());
    EXPECT_GT(batched.latency_evals, 0);   // the cache actually metered
    EXPECT_EQ(reference.latency_evals, 0);  // oracle path is unmetered
  }
}

// ---- Asymmetric batched kernel ----------------------------------------------

AsymmetricGame oracle_asymmetric_game() {
  // Two classes sharing a middle link (multicommodity-style) plus private
  // alternatives, so the class-local ex-post merges cross genuinely
  // shared congestion.
  std::vector<LatencyPtr> fns{make_linear(1.5), make_monomial(0.1, 2.0),
                              make_linear(0.75), make_linear(3.0),
                              make_monomial(0.2, 2.0), make_linear(1.0)};
  std::vector<PlayerClass> classes(2);
  classes[0].strategies = {{0}, {1}, {2}};
  classes[0].num_players = 700;
  classes[1].strategies = {{2}, {3}, {4}, {5}};
  classes[1].num_players = 500;
  return AsymmetricGame(std::move(fns), std::move(classes));
}

TEST(EngineOracle, AsymmetricRoundsBitwiseIdentical) {
  const auto game = oracle_asymmetric_game();
  for (const bool nu_cutoff : {true, false}) {
    SCOPED_TRACE(nu_cutoff ? "nu-cutoff" : "no-nu");
    AsymmetricImitationParams params;
    params.nu_cutoff = nu_cutoff;
    Rng batched_rng(61);
    Rng reference_rng(61);
    AsymmetricState batched_x =
        AsymmetricState::uniform_random(game, batched_rng);
    AsymmetricState reference_x =
        AsymmetricState::uniform_random(game, reference_rng);
    AsymmetricRoundWorkspace ws;
    AsymmetricRoundResult batched;
    for (int round = 0; round < 80; ++round) {
      draw_asymmetric_round(game, batched_x, params, batched_rng, ws,
                            batched);
      const AsymmetricRoundResult reference =
          draw_asymmetric_round_reference(game, reference_x, params,
                                          reference_rng);
      ASSERT_EQ(batched.moves.size(), reference.moves.size())
          << "round " << round;
      for (std::size_t i = 0; i < batched.moves.size(); ++i) {
        ASSERT_EQ(batched.moves[i].player_class,
                  reference.moves[i].player_class);
        ASSERT_EQ(batched.moves[i].from, reference.moves[i].from);
        ASSERT_EQ(batched.moves[i].to, reference.moves[i].to);
        ASSERT_EQ(batched.moves[i].count, reference.moves[i].count);
      }
      ASSERT_EQ(batched.movers, reference.movers) << "round " << round;
      // Identical RNG stream consumption, not just identical output —
      // this is what makes pruning invisible to replays.
      ASSERT_EQ(batched_rng.state(), reference_rng.state())
          << "round " << round;
      batched_x.apply(game, batched.moves, ws.apply_scratch);
      ws.ctx.refresh(ws.apply_scratch.touched);
      reference_x.apply(game, reference.moves);
      ASSERT_EQ(batched_x.counts(), reference_x.counts())
          << "round " << round;
    }
  }
}

TEST(EngineOracle, AsymmetricRowThreadsBitwiseInvariant) {
  const auto game = oracle_asymmetric_game();
  const AsymmetricImitationParams params;
  std::vector<std::vector<std::vector<std::int64_t>>> finals;
  std::vector<std::array<std::uint64_t, 4>> rng_states;
  for (const int row_threads : {1, 2, 4}) {
    Rng rng(62);
    AsymmetricState x = AsymmetricState::uniform_random(game, rng);
    AsymmetricRoundWorkspace ws;
    AsymmetricRoundResult rr;
    for (int round = 0; round < 40; ++round) {
      draw_asymmetric_round(game, x, params, rng, ws, rr, row_threads);
      x.apply(game, rr.moves, ws.apply_scratch);
      ws.ctx.refresh(ws.apply_scratch.touched);
    }
    finals.push_back(x.counts());
    rng_states.push_back(rng.state());
  }
  EXPECT_EQ(finals[0], finals[1]);
  EXPECT_EQ(finals[0], finals[2]);
  EXPECT_EQ(rng_states[0], rng_states[1]);
  EXPECT_EQ(rng_states[0], rng_states[2]);
}

// ---- All six registry scenario families -------------------------------------

struct FamilyCase {
  const char* scenario;
  std::int64_t n;
  const char* protocol;
  std::int64_t rounds;
};

const FamilyCase kFamilies[] = {
    {"singleton-uniform", 2000, "imitation", 60},
    {"load-balancing", 2000, "combined", 60},
    {"network-routing", 1500, "exploration", 60},
    {"asymmetric", 900, "imitation", 60},
    {"multicommodity", 900, "imitation", 60},
    {"threshold-lb", 12, "imitation", 4000},
};

sweep::DynamicsConfig family_dynamics(std::int64_t rounds, bool reference) {
  sweep::DynamicsConfig dynamics;
  dynamics.max_rounds = rounds;
  dynamics.stop = sweep::StopRule::kNash;
  dynamics.check_interval = 3;
  dynamics.reference_kernel = reference;
  return dynamics;
}

TEST(EngineOracle, AllSixScenarioFamiliesMatchReferenceKernel) {
  for (const FamilyCase& c : kFamilies) {
    SCOPED_TRACE(c.scenario);
    sweep::ScenarioSpec spec;
    spec.name = c.scenario;
    const auto instance = sweep::make_scenario(spec, c.n);
    const auto protocol = sweep::parse_protocol_spec(c.protocol);
    const std::uint64_t seed = 4321;

    Rng batched_rng(seed);
    const sweep::TrialOutcome batched = instance->run_trial(
        protocol, family_dynamics(c.rounds, false), batched_rng);
    Rng reference_rng(seed);
    const sweep::TrialOutcome reference = instance->run_trial(
        protocol, family_dynamics(c.rounds, true), reference_rng);
    EXPECT_EQ(batched, reference);
    EXPECT_EQ(batched_rng.state(), reference_rng.state());
  }
}

TEST(EngineOracle, RowThreadsByteIdenticalTrials) {
  // DynamicsConfig::row_threads ∈ {1, 2, 4} must be invisible in every
  // outcome field and in the RNG stream, for the symmetric families AND
  // the asymmetric class-local kernel.
  for (const char* scenario :
       {"network-routing", "singleton-uniform", "asymmetric",
        "multicommodity"}) {
    SCOPED_TRACE(scenario);
    sweep::ScenarioSpec spec;
    spec.name = scenario;
    const auto instance = sweep::make_scenario(spec, 1200);
    const auto protocol = sweep::parse_protocol_spec("imitation");
    sweep::TrialOutcome first;
    std::array<std::uint64_t, 4> first_rng{};
    for (const int row_threads : {1, 2, 4}) {
      sweep::DynamicsConfig dynamics = family_dynamics(50, false);
      dynamics.row_threads = row_threads;
      Rng rng(77);
      const sweep::TrialOutcome outcome =
          instance->run_trial(protocol, dynamics, rng);
      if (row_threads == 1) {
        first = outcome;
        first_rng = rng.state();
        continue;
      }
      EXPECT_EQ(outcome, first) << "row_threads=" << row_threads;
      EXPECT_EQ(rng.state(), first_rng) << "row_threads=" << row_threads;
    }
  }
}

TEST(EngineOracle, RowThreadsByteIdenticalRunsBothModes) {
  // Direct run_dynamics invariance for both engine modes (the per-player
  // engine threads its row fills too).
  const auto game = network_game_k8(2000);
  const CombinedProtocol protocol{ImitationParams{}, ExplorationParams{},
                                  0.5};
  for (EngineMode mode : {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    RunOptions options;
    options.max_rounds = mode == EngineMode::kAggregate ? 60 : 25;
    options.mode = mode;
    std::optional<State> first_x;
    std::array<std::uint64_t, 4> first_rng{};
    for (const int row_threads : {1, 2, 4}) {
      options.row_threads = row_threads;
      Rng rng(5);
      State x = State::uniform_random(game, rng);
      run_dynamics(game, x, protocol, rng, options, nullptr);
      if (!first_x.has_value()) {
        first_x.emplace(std::move(x));
        first_rng = rng.state();
        continue;
      }
      EXPECT_TRUE(x == *first_x) << "row_threads=" << row_threads;
      EXPECT_EQ(rng.state(), first_rng) << "row_threads=" << row_threads;
    }
  }
}

TEST(EngineOracle, AsymmetricCheckpointKillResumeMatchesReferenceRun) {
  // Asymmetric persistence-level interchange: a BATCHED-kernel trial of
  // each asymmetric family checkpointed at round 9, killed, and resumed
  // must bitwise-match the uninterrupted PER-PAIR reference trial —
  // asymmetric snapshots carry no trace of which kernel wrote them.
  for (const char* scenario : {"asymmetric", "multicommodity"}) {
    SCOPED_TRACE(scenario);
    sweep::ScenarioSpec spec;
    spec.name = scenario;
    const auto instance = sweep::make_scenario(spec, 900);
    const auto protocol = sweep::parse_protocol_spec("imitation");
    const std::uint64_t seed = 88;
    const std::int64_t total_rounds = 60;

    Rng reference_rng(seed);
    const sweep::TrialOutcome reference = instance->run_trial(
        protocol, family_dynamics(total_rounds, true), reference_rng);

    const std::string snap = ::testing::TempDir() + "/oracle_asym_" +
                             std::string(scenario) + ".snap";
    Rng killed_rng(seed);
    instance->run_trial_checkpointed(protocol, family_dynamics(9, false),
                                     killed_rng,
                                     sweep::TrialCheckpoint{snap, 0});
    const sweep::TrialOutcome resumed = instance->resume_trial(
        protocol, family_dynamics(total_rounds, false), snap);
    EXPECT_EQ(resumed, reference);
    EXPECT_GT(reference.rounds, 9.0);  // the resumed leg did real work
    std::remove(snap.c_str());
  }
}

TEST(EngineOracle, BatchedCheckpointKillResumeMatchesReferenceRun) {
  // Persistence-level interchange: a batched trial checkpointed at round 9,
  // killed, and resumed (all on the batched kernel) must bitwise-match the
  // uninterrupted run on the REFERENCE kernel — checkpoints carry no trace
  // of which kernel wrote them.
  sweep::ScenarioSpec spec;
  spec.name = "network-routing";
  const auto instance = sweep::make_scenario(spec, 1500);
  const auto protocol = sweep::parse_protocol_spec("combined");
  const std::uint64_t seed = 99;
  const std::int64_t total_rounds = 60;

  Rng reference_rng(seed);
  const sweep::TrialOutcome reference = instance->run_trial(
      protocol, family_dynamics(total_rounds, true), reference_rng);

  const std::string snap =
      ::testing::TempDir() + "/oracle_kill_resume.snap";
  Rng killed_rng(seed);
  instance->run_trial_checkpointed(protocol, family_dynamics(9, false),
                                   killed_rng,
                                   sweep::TrialCheckpoint{snap, 0});
  const sweep::TrialOutcome resumed = instance->resume_trial(
      protocol, family_dynamics(total_rounds, false), snap);
  EXPECT_EQ(resumed, reference);
  EXPECT_GT(reference.rounds, 9.0);  // the resumed leg did real work
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace cid
