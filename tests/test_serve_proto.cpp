// Wire-protocol guarantees for distributed sweeps (src/serve/proto.hpp).
//
// The codec is the trust boundary of cid_serve: every frame a worker or a
// port scanner sends crosses it. The contract under test: well-formed
// frames round-trip under any chunking, malformed input (zero/oversized
// length prefixes, truncated frames, garbage JSON, mistyped fields) is
// rejected with proto_error — never buffered, never a hang — and outcome
// doubles cross the wire bit-exactly (NaN and -0.0 included), because the
// fleet-vs-local manifest byte-identity claim rides on them. The last two
// tests drive a live loopback coordinator with a raw socket: a protocol
// version mismatch and a garbage frame each get a clean close.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "persist/manifest.hpp"
#include "serve/coordinator.hpp"
#include "serve/net.hpp"
#include "serve/proto.hpp"
#include "serve/worker.hpp"
#include "sweep/runner.hpp"

namespace cid::serve {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---- Frame codec ------------------------------------------------------------

TEST(Frames, RoundTripUnderAnyChunking) {
  const std::vector<std::string> payloads = {
      "{\"type\":\"lease\"}",
      "{\"type\":\"grant\",\"lease_id\":7}",
      std::string("{\"type\":\"pad\",\"s\":\"") + std::string(5000, 'x') +
          "\"}",
  };
  std::string stream;
  for (const std::string& p : payloads) stream += encode_frame(p);

  // Feed in every chunk size from pathological (1 byte) to all-at-once;
  // the reader must yield the same payloads in order regardless.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{4096}, stream.size()}) {
    SCOPED_TRACE(chunk);
    FrameReader reader;
    std::vector<std::string> out;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      reader.feed(std::string_view(stream).substr(i, chunk));
      while (auto frame = reader.next()) out.push_back(*frame);
    }
    EXPECT_EQ(out, payloads);
    EXPECT_EQ(reader.buffered(), 0u);  // nothing half-read left behind
  }
}

TEST(Frames, WriterEnforcesTheSameLimitsTheReaderDoes) {
  EXPECT_THROW(encode_frame(""), proto_error);
  EXPECT_THROW(encode_frame(std::string(kMaxFrameBytes + 1, 'x')),
               proto_error);
  // The boundary itself is legal.
  EXPECT_NO_THROW(encode_frame(std::string(kMaxFrameBytes, 'x')));
}

TEST(Frames, ZeroAndOversizedLengthPrefixesRejectedImmediately) {
  const auto prefix = [](std::uint32_t length) {
    std::string out(4, '\0');
    for (int i = 0; i < 4; ++i) {
      out[static_cast<std::size_t>(i)] =
          static_cast<char>((length >> (8 * i)) & 0xFF);
    }
    return out;
  };
  {
    FrameReader reader;
    reader.feed(prefix(0));
    EXPECT_THROW(reader.next(), proto_error);
  }
  {
    // The oversized prefix is rejected from the four length bytes alone —
    // before any payload arrives — so garbage cannot demand a 4 GiB
    // buffer before being found out.
    FrameReader reader;
    reader.feed(prefix(kMaxFrameBytes + 1));
    EXPECT_THROW(reader.next(), proto_error);
  }
  {
    // "GET " as a length prefix (an HTTP client on the lease port) is
    // 0x20544547 bytes — far past the cap.
    FrameReader reader;
    reader.feed("GET / HTTP/1.1\r\n");
    EXPECT_THROW(reader.next(), proto_error);
  }
}

TEST(Frames, TruncatedFrameStaysPendingNotDelivered) {
  const std::string frame = encode_frame("{\"type\":\"bye\"}");
  FrameReader reader;
  reader.feed(std::string_view(frame).substr(0, frame.size() - 3));
  EXPECT_FALSE(reader.next().has_value());
  // EOF now would leave buffered() > 0 — the "peer died mid-frame"
  // signal connection teardown keys off.
  EXPECT_GT(reader.buffered(), 0u);
  reader.feed(std::string_view(frame).substr(frame.size() - 3));
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"type\":\"bye\"}");
  EXPECT_EQ(reader.buffered(), 0u);
}

// ---- JSON grammar -----------------------------------------------------------

TEST(Json, GarbageIsRejectedNotGuessedAt) {
  const std::vector<std::string> bad = {
      "",
      "not json",
      "42",                        // top level must be an object
      "\"string\"",                //
      "[1,2,3]",                   // arrays are outside the grammar
      "{\"a\":[1]}",               //
      "{",                         // truncated
      "{\"a\":}",                  //
      "{\"a\":1,}",                // trailing comma
      "{\"a\":1} trailing",        // trailing garbage
      "{\"a\":1,\"a\":2}",         // duplicate keys
      "{\"a\":\"\x01\"}",          // raw control char in string
      "{\"a\":\"\\u20ac\"}",       // non-ASCII escape (outside grammar)
      "{\"a\":nulll}",             //
      std::string(9, '{'),         // nesting past the depth cap
  };
  for (const std::string& text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW(parse_json(text), proto_error);
  }
}

TEST(Json, IntegersStayExactDoublesStayDoubles) {
  const JsonValue v = parse_json(
      "{\"big\":9007199254740993,\"neg\":-5,\"frac\":1.5,\"exp\":1e3,"
      "\"yes\":true,\"none\":null,\"s\":\"a\\\\b\\\"c\\u0041\"}");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  // 2^53+1 is not representable as a double; the integer lane keeps it.
  EXPECT_TRUE(v.object.at("big").is_integer);
  EXPECT_EQ(v.object.at("big").integer, 9007199254740993LL);
  EXPECT_EQ(v.object.at("neg").integer, -5);
  EXPECT_FALSE(v.object.at("frac").is_integer);
  EXPECT_EQ(v.object.at("frac").number, 1.5);
  EXPECT_FALSE(v.object.at("exp").is_integer);
  EXPECT_EQ(v.object.at("exp").number, 1000.0);
  EXPECT_TRUE(v.object.at("yes").boolean);
  EXPECT_EQ(v.object.at("none").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.object.at("s").string, "a\\b\"cA");
}

// ---- Bit-exact doubles ------------------------------------------------------

TEST(HexBits, EveryBitPatternRoundTrips) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      3.141592653589793,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  for (const double value : values) {
    const std::string hex = double_bits_hex(value);
    SCOPED_TRACE(hex);
    EXPECT_EQ(hex.size(), 16u);
    const double back = double_from_bits_hex(hex);
    // Bitwise identity, not ==: NaN != NaN and -0.0 == 0.0 would both
    // let a lossy codec slip through a value comparison.
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, &value, sizeof(a));
    std::memcpy(&b, &back, sizeof(b));
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(double_bits_hex(1.0), "3ff0000000000000");
  EXPECT_EQ(double_from_bits_hex("3ff0000000000000"), 1.0);
}

TEST(HexBits, MalformedHexRejected) {
  EXPECT_THROW(double_from_bits_hex(""), proto_error);
  EXPECT_THROW(double_from_bits_hex("3ff000000000000"), proto_error);    // 15
  EXPECT_THROW(double_from_bits_hex("3ff00000000000000"), proto_error);  // 17
  EXPECT_THROW(double_from_bits_hex("3ff000000000000g"), proto_error);
}

// ---- Messages ---------------------------------------------------------------

TEST(Messages, CompleteRoundTripsOutcomesBitExactly) {
  sweep::TrialOutcome outcome;
  outcome.rounds = 123456.0;
  outcome.converged = true;
  outcome.movers = 987654321;
  outcome.potential = -0.0;  // the classic decimal-round-trip victims
  outcome.social_cost = std::numeric_limits<double>::quiet_NaN();

  const Message message =
      Message::parse(msg_complete(42, 3, 7, outcome));
  EXPECT_EQ(message.type(), "complete");
  EXPECT_EQ(message.get_int("lease_id"), 42);
  EXPECT_EQ(message.get_int("cell"), 3);
  EXPECT_EQ(message.get_int("trial"), 7);
  const sweep::TrialOutcome back = decode_outcome(message);
  EXPECT_EQ(back.rounds, outcome.rounds);
  EXPECT_EQ(back.converged, outcome.converged);
  EXPECT_EQ(back.movers, outcome.movers);
  EXPECT_EQ(double_bits_hex(back.potential),
            double_bits_hex(outcome.potential));
  EXPECT_EQ(double_bits_hex(back.social_cost),
            double_bits_hex(outcome.social_cost));
}

TEST(Messages, HelloAndMetricsRoundTrip) {
  const std::uint64_t fingerprint = 0xDEADBEEFCAFEF00DULL;
  const Message hello = Message::parse(msg_hello(fingerprint, "w-1"));
  EXPECT_EQ(hello.type(), "hello");
  EXPECT_EQ(hello.get_int("v"), kServeProtoVersion);
  EXPECT_EQ(hello.get_string("worker"), "w-1");
  EXPECT_EQ(decode_fingerprint(hello), fingerprint);

  const std::map<std::string, std::int64_t> counters = {
      {"sweep.trials_run", 12}, {"sweep.queue_wait_ns", 3456789}};
  const Message metrics = Message::parse(msg_metrics(counters));
  EXPECT_EQ(metrics.type(), "metrics");
  EXPECT_EQ(metrics.get_int("metrics_version"), obs::kMetricsVersion);
  EXPECT_EQ(metrics.get_counters("counters"), counters);
}

TEST(Messages, AccessorsNameTheOffendingField) {
  EXPECT_THROW(Message::parse("{\"v\":1}"), proto_error);  // no type
  EXPECT_THROW(Message::parse("{\"type\":7}"), proto_error);

  const Message m = Message::parse(
      "{\"type\":\"grant\",\"lease_id\":\"seven\",\"ttl_ms\":1.5}");
  EXPECT_TRUE(m.has("lease_id"));
  EXPECT_FALSE(m.has("cell"));
  EXPECT_THROW(m.get_int("cell"), proto_error);         // absent
  EXPECT_THROW(m.get_int("lease_id"), proto_error);     // string, not int
  EXPECT_THROW(m.get_int("ttl_ms"), proto_error);       // fractional
  EXPECT_THROW(m.get_string("ttl_ms"), proto_error);    // number, not string
  EXPECT_THROW(m.get_double_bits("lease_id"), proto_error);  // bad hex
  EXPECT_THROW(m.get_counters("lease_id"), proto_error);     // not an object
  try {
    m.get_int("lease_id");
    FAIL() << "expected proto_error";
  } catch (const proto_error& error) {
    EXPECT_NE(std::string(error.what()).find("lease_id"), std::string::npos);
  }
}

// ---- Live handshake rejection (loopback) ------------------------------------

// A one-cell, one-trial grid: enough for a coordinator to serve while a
// raw socket pokes at its handshake.
sweep::SweepGrid tiny_grid() {
  sweep::SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 2.0}};
  grid.protocols = sweep::parse_protocol_list("imitation");
  grid.ns = {50};
  grid.trials = 1;
  grid.master_seed = 9;
  grid.dynamics.max_rounds = 500;
  return grid;
}

// One blocking request/response on a raw client socket.
std::string raw_rpc(const Socket& socket, const std::string& payload) {
  send_frame(socket, encode_frame(payload));
  FrameReader reader;
  char buffer[4096];
  for (;;) {
    if (auto frame = reader.next()) return *frame;
    const std::size_t got = read_some(socket, buffer, sizeof(buffer));
    if (got == 0) {
      throw net_error("coordinator closed before responding");
    }
    reader.feed(std::string_view(buffer, got));
  }
}

// Reads until EOF; throws net_error (timeout) if the peer never closes.
void expect_eof(const Socket& socket) {
  char buffer[4096];
  while (read_some(socket, buffer, sizeof(buffer)) != 0) {
  }
}

TEST(Handshake, MismatchesAndGarbageGetCleanClosesNotHangs) {
  const sweep::SweepGrid grid = tiny_grid();
  const std::string manifest =
      temp_path("proto_handshake.manifest");
  std::remove(manifest.c_str());

  CoordinatorOptions options;
  options.manifest_path = manifest;
  options.tick_seconds = 0.01;
  options.max_seconds = 60.0;  // safety net, never the expected exit
  std::promise<std::uint16_t> port_promise;
  options.on_listening = [&](std::uint16_t lease_port, std::uint16_t) {
    port_promise.set_value(lease_port);
  };
  std::thread coordinator([&] { serve_grid(grid, options); });
  const std::uint16_t port = port_promise.get_future().get();

  {
    // Wrong protocol version: an explicit error frame, then close.
    Socket s = tcp_connect("127.0.0.1", port);
    set_recv_timeout(s, 10.0);
    const Message reply = Message::parse(raw_rpc(
        s, "{\"type\":\"hello\",\"v\":999,"
           "\"fingerprint\":\"0000000000000000\",\"worker\":\"bad\"}"));
    EXPECT_EQ(reply.type(), "error");
    EXPECT_NE(reply.get_string("message").find("version"),
              std::string::npos);
    EXPECT_NO_THROW(expect_eof(s));
  }
  {
    // Right version, wrong grid: the fingerprint guard.
    Socket s = tcp_connect("127.0.0.1", port);
    set_recv_timeout(s, 10.0);
    const Message reply = Message::parse(
        raw_rpc(s, msg_hello(persist::grid_fingerprint(grid) ^ 1, "bad")));
    EXPECT_EQ(reply.type(), "error");
    EXPECT_NE(reply.get_string("message").find("fingerprint"),
              std::string::npos);
    EXPECT_NO_THROW(expect_eof(s));
  }
  {
    // Requests before hello are a protocol violation, not a lease.
    Socket s = tcp_connect("127.0.0.1", port);
    set_recv_timeout(s, 10.0);
    const Message reply = Message::parse(raw_rpc(s, msg_lease()));
    EXPECT_EQ(reply.type(), "error");
    EXPECT_NO_THROW(expect_eof(s));
  }
  {
    // A garbage length prefix poisons the connection: dropped, no reply.
    Socket s = tcp_connect("127.0.0.1", port);
    set_recv_timeout(s, 10.0);
    send_frame(s, "GARBAGE-NOT-A-FRAME");
    EXPECT_NO_THROW(expect_eof(s));
  }

  // The coordinator survived all four abuses: a real worker still drains
  // the grid, which is also what lets serve_grid() return.
  WorkerOptions worker;
  worker.port = port;
  worker.name = "after-abuse";
  const WorkerReport report = run_worker(grid, worker);
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.trials_completed, 1u);
  coordinator.join();
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace cid::serve
