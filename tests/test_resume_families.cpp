// Kill-and-resume byte-identity for EVERY registry scenario family.
//
// For each of the six registered scenarios the contract is the same one
// tests/test_resume.cpp proves for raw symmetric runs: a trial
// checkpointed at round K and resumed produces a TrialOutcome bitwise
// identical (doubles compared as IEEE words via operator==) to the
// uninterrupted trial's, and the snapshot the resumed trial ends on is
// byte-identical to the one an uninterrupted checkpointed trial writes.
// Symmetric scenarios exercise the CIDSNAP symmetric sections, asymmetric
// ones the class-structured sections, and threshold-lb the
// MaxCut-instance sections — all six families through one format.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "persist/binio.hpp"
#include "persist/snapshot.hpp"
#include "sweep/scenario.hpp"
#include "util/rng.hpp"

namespace cid::sweep {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct FamilyCase {
  const char* scenario;
  std::int64_t n;
  const char* protocol;
  std::int64_t total_rounds;
  std::int64_t kill_round;
};

// Kill points are chosen inside each scenario's active phase so the
// resumed leg carries real work (the vacuity guard below enforces it).
const FamilyCase kCases[] = {
    {"singleton-uniform", 2000, "imitation", 60, 9},
    {"load-balancing", 2000, "combined", 60, 9},
    {"network-routing", 1500, "exploration", 60, 9},
    {"asymmetric", 900, "imitation", 60, 9},
    {"multicommodity", 900, "imitation", 60, 9},
    {"threshold-lb", 12, "imitation", 4000, 5},
};

ScenarioSpec spec_for(const FamilyCase& c) {
  ScenarioSpec spec;
  spec.name = c.scenario;
  return spec;
}

DynamicsConfig dynamics_with_budget(std::int64_t rounds) {
  DynamicsConfig dynamics;
  dynamics.max_rounds = rounds;
  // A stop rule that rarely fires within the horizon, so the kill lands
  // mid-flight; the absolute-round check cadence still gets exercised.
  dynamics.stop = StopRule::kNash;
  dynamics.check_interval = 3;
  return dynamics;
}

TEST(FamilyKillAndResume, AllSixRegistryScenariosAreByteIdentical) {
  for (const FamilyCase& c : kCases) {
    SCOPED_TRACE(c.scenario);
    const ScenarioSpec spec = spec_for(c);
    const auto instance = make_scenario(spec, c.n);
    const ProtocolSpec protocol = parse_protocol_spec(c.protocol);
    const DynamicsConfig full = dynamics_with_budget(c.total_rounds);
    const DynamicsConfig killed = dynamics_with_budget(c.kill_round);
    const std::uint64_t seed = 1234;

    // Reference: one uninterrupted trial.
    Rng reference_rng(seed);
    const TrialOutcome reference =
        instance->run_trial(protocol, full, reference_rng);

    // Reference with checkpointing enabled: proves checkpoint writes draw
    // zero RNG and leave the outcome untouched, and pins the snapshot an
    // uninterrupted run ends on.
    const std::string full_snap = temp_path(spec.name + "_full.snap");
    Rng checkpointed_rng(seed);
    const TrialOutcome checkpointed = instance->run_trial_checkpointed(
        protocol, full, checkpointed_rng, TrialCheckpoint{full_snap, 5});
    EXPECT_EQ(checkpointed, reference);

    // Leg 1: run to the kill round, snapshotting at exit (the "kill").
    const std::string kill_snap = temp_path(spec.name + "_kill.snap");
    Rng killed_rng(seed);
    instance->run_trial_checkpointed(protocol, killed, killed_rng,
                                     TrialCheckpoint{kill_snap, 0});

    // Leg 2: resume in a fresh "process" (nothing shared but the file).
    const TrialOutcome resumed =
        instance->resume_trial(protocol, full, kill_snap);
    EXPECT_EQ(resumed, reference);

    // Vacuity guard: the resumed segment did real work.
    EXPECT_GT(reference.rounds, static_cast<double>(c.kill_round));

    // Resuming an ALREADY-FINISHED trial is the identity.
    const TrialOutcome idempotent =
        instance->resume_trial(protocol, full, full_snap);
    EXPECT_EQ(idempotent, reference);

    std::remove(full_snap.c_str());
    std::remove(kill_snap.c_str());
  }
}

TEST(FamilyKillAndResume, WrongScenarioSnapshotFailsLoudly) {
  ScenarioSpec lb;
  lb.name = "load-balancing";
  const auto small = make_scenario(lb, 500);
  const auto large = make_scenario(lb, 700);
  const ProtocolSpec protocol = parse_protocol_spec("imitation");
  const DynamicsConfig dynamics = dynamics_with_budget(10);

  const std::string snap = temp_path("wrong_scenario.snap");
  Rng rng(7);
  small->run_trial_checkpointed(protocol, dynamics, rng,
                                TrialCheckpoint{snap, 0});
  // Same family, different n: the embedded game differs, so resume must
  // refuse instead of silently continuing the wrong dynamics.
  EXPECT_THROW(large->resume_trial(protocol, dynamics, snap),
               persist::persist_error);

  // Cross-family confusion is caught by the snapshot family tag.
  ScenarioSpec asym;
  asym.name = "multicommodity";
  const auto asym_instance = make_scenario(asym, 500);
  EXPECT_THROW(asym_instance->resume_trial(protocol, dynamics, snap),
               persist::persist_error);
  std::remove(snap.c_str());
}

TEST(FamilyKillAndResume, ThresholdBestResponseVariantAlsoResumes) {
  // threshold-lb maps non-imitation protocols onto plain best response
  // over the quadratic game; that code path checkpoints and resumes too.
  ScenarioSpec spec;
  spec.name = "threshold-lb";
  const auto instance = make_scenario(spec, 10);
  const ProtocolSpec protocol = parse_protocol_spec("exploration");
  const DynamicsConfig full = dynamics_with_budget(1000);
  const DynamicsConfig killed = dynamics_with_budget(3);

  Rng reference_rng(99);
  const TrialOutcome reference =
      instance->run_trial(protocol, full, reference_rng);

  const std::string snap = temp_path("threshold_br.snap");
  Rng killed_rng(99);
  instance->run_trial_checkpointed(protocol, killed, killed_rng,
                                   TrialCheckpoint{snap, 0});
  const TrialOutcome resumed = instance->resume_trial(protocol, full, snap);
  EXPECT_EQ(resumed, reference);
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace cid::sweep
