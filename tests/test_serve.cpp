// Loopback end-to-end tests of the trial-lease coordinator
// (src/serve/coordinator.hpp + src/serve/worker.hpp).
//
// The tentpole claim: a fleet run — coordinator plus N workers over TCP,
// including workers killed mid-lease, poisoned leases, and worker-side
// requeues — produces a final manifest byte-identical to what a local
// --threads 1 run_sweep writes for the same grid. Trial outcomes are a
// pure function of (grid, master_seed) via sweep::derive_trial_rng, the
// coordinator rewrites the manifest canonically at drain, and so no
// amount of lease churn may change a single byte.
//
// Worker death is simulated deterministically: sweep.trial:crash with a
// throwing crash handler unwinds one worker thread mid-lease (its socket
// closes exactly as a SIGKILL would close it), and serve.lease_expire
// poisons a grant so its completion is rejected without depending on
// real TTL timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "persist/binio.hpp"
#include "persist/manifest.hpp"
#include "serve/coordinator.hpp"
#include "serve/worker.hpp"
#include "sweep/runner.hpp"
#include "util/fault.hpp"

namespace cid::serve {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Scenario family 1: heterogeneous linear load balancing, two protocols.
sweep::SweepGrid load_balancing_grid() {
  sweep::SweepGrid grid;
  grid.scenario.name = "load-balancing";
  grid.scenario.params = {{"m", 4.0}};
  grid.protocols = sweep::parse_protocol_list("imitation,combined");
  grid.ns = {200, 500};
  grid.trials = 4;  // 4 cells x 4 = 16 trials
  grid.master_seed = 31;
  grid.dynamics.max_rounds = 2000;
  return grid;
}

// Scenario family 2: identical monomial links (the paper's uniform case).
sweep::SweepGrid singleton_grid() {
  sweep::SweepGrid grid;
  grid.scenario.name = "singleton-uniform";
  grid.scenario.params = {{"m", 3.0}, {"degree", 2.0}};
  grid.protocols = sweep::parse_protocol_list("imitation,combined");
  grid.ns = {100, 300};
  grid.trials = 3;  // 4 cells x 3 = 12 trials
  grid.master_seed = 77;
  grid.dynamics.max_rounds = 2000;
  return grid;
}

// The ground truth every fleet run is compared against: a local,
// unsharded, single-threaded sweep's manifest bytes.
std::string reference_manifest_bytes(const sweep::SweepGrid& grid,
                                     const std::string& name) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  sweep::SweepOptions options;
  options.threads = 1;
  options.manifest_path = path;
  const sweep::SweepResult result = sweep::run_sweep(grid, options);
  EXPECT_TRUE(result.complete);
  std::string bytes = persist::slurp_file(path);
  std::remove(path.c_str());
  return bytes;
}

CoordinatorOptions coordinator_options(const std::string& manifest,
                                       std::promise<std::uint16_t>& port) {
  CoordinatorOptions options;
  options.manifest_path = manifest;
  options.tick_seconds = 0.01;
  options.max_seconds = 120.0;  // CI safety net, never the expected exit
  options.on_listening = [&port](std::uint16_t lease_port, std::uint16_t) {
    port.set_value(lease_port);
  };
  return options;
}

// Faults and the crash handler are process-global; every test must leave
// them disarmed for its neighbors.
class Serve : public ::testing::Test {
 protected:
  void TearDown() override {
    util::clear_faults();
    util::set_fault_crash_handler(nullptr);
  }
};

// The core acceptance claim, for two scenario families: coordinator + 3
// workers lands the exact bytes of the local single-threaded run.
TEST_F(Serve, FleetManifestByteIdenticalToLocalRun) {
  struct Family {
    const char* name;
    sweep::SweepGrid grid;
  };
  const std::vector<Family> families = {
      {"load-balancing", load_balancing_grid()},
      {"singleton-uniform", singleton_grid()},
  };
  for (const Family& family : families) {
    SCOPED_TRACE(family.name);
    const std::string reference = reference_manifest_bytes(
        family.grid, std::string("serve_ref_") + family.name + ".manifest");

    const std::string manifest =
        temp_path(std::string("serve_fleet_") + family.name + ".manifest");
    std::remove(manifest.c_str());
    std::promise<std::uint16_t> port_promise;
    const CoordinatorOptions options =
        coordinator_options(manifest, port_promise);

    CoordinatorReport report;
    std::thread coordinator(
        [&] { report = serve_grid(family.grid, options); });
    const std::uint16_t port = port_promise.get_future().get();

    std::vector<WorkerReport> workers(3);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      threads.emplace_back([&, i] {
        WorkerOptions worker;
        worker.port = port;
        worker.name = "w" + std::to_string(i);
        workers[i] = run_worker(family.grid, worker);
      });
    }
    for (std::thread& t : threads) t.join();
    coordinator.join();

    EXPECT_TRUE(report.complete);
    EXPECT_FALSE(report.timed_out);
    EXPECT_EQ(report.trials_failed, 0u);
    EXPECT_EQ(report.workers_seen, 3u);
    std::size_t fleet_trials = 0;
    for (const WorkerReport& w : workers) {
      EXPECT_TRUE(w.drained);
      fleet_trials += w.trials_completed;
    }
    EXPECT_EQ(fleet_trials, report.trials_total);
    EXPECT_EQ(persist::slurp_file(manifest), reference);
    std::remove(manifest.c_str());
  }
}

// The ISSUE acceptance scenario: one worker is killed mid-lease (crash
// fault while it holds a grant; its socket closes exactly as a kill
// would), the coordinator reclaims the dropped lease, the survivors
// drain the grid — and the bytes still match the local run.
TEST_F(Serve, WorkerKilledMidLeaseIsReclaimedWithoutChangingBytes) {
  const sweep::SweepGrid grid = load_balancing_grid();
  const std::string reference =
      reference_manifest_bytes(grid, "serve_kill_ref.manifest");

  const std::string manifest = temp_path("serve_kill_fleet.manifest");
  std::remove(manifest.c_str());
  std::promise<std::uint16_t> port_promise;
  const CoordinatorOptions options =
      coordinator_options(manifest, port_promise);

  // The 2nd consultation of sweep.trial across the fleet crashes: some
  // worker dies between grant and complete, deterministically once.
  util::set_fault_crash_handler(+[](const char* site) {
    throw util::fault_crash(std::string("injected kill at ") + site);
  });
  util::configure_faults("sweep.trial:crash:hit=2");

  CoordinatorReport report;
  std::thread coordinator([&] { report = serve_grid(grid, options); });
  const std::uint16_t port = port_promise.get_future().get();

  std::atomic<int> killed{0};
  std::vector<WorkerReport> workers(3);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    threads.emplace_back([&, i] {
      WorkerOptions worker;
      worker.port = port;
      worker.name = "w" + std::to_string(i);
      try {
        workers[i] = run_worker(grid, worker);
      } catch (const util::fault_crash&) {
        killed.fetch_add(1);  // this worker "died"; its socket is gone
      }
    });
  }
  for (std::thread& t : threads) t.join();
  coordinator.join();

  EXPECT_EQ(killed.load(), 1);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.trials_failed, 0u);
  // The kill was mid-lease, so the drop was observed as a disconnect (or,
  // if the TTL raced first, an expiry) and the trial was re-granted.
  EXPECT_GE(report.leases_disconnected + report.leases_expired, 1u);
  EXPECT_GT(report.leases_granted, report.trials_total);
  EXPECT_EQ(persist::slurp_file(manifest), reference);
  std::remove(manifest.c_str());
}

// serve.lease_expire poisons the first grant: its completion is rejected
// (lease_lost at the worker), the trial is reclaimed on the next tick and
// re-granted — no TTL timing involved — and the bytes still match.
TEST_F(Serve, PoisonedLeaseIsRejectedReclaimedAndRegranted) {
  const sweep::SweepGrid grid = singleton_grid();
  const std::string reference =
      reference_manifest_bytes(grid, "serve_poison_ref.manifest");

  const std::string manifest = temp_path("serve_poison_fleet.manifest");
  std::remove(manifest.c_str());
  std::promise<std::uint16_t> port_promise;
  const CoordinatorOptions options =
      coordinator_options(manifest, port_promise);

  util::configure_faults("serve.lease_expire:err:hit=1");

  CoordinatorReport report;
  std::thread coordinator([&] { report = serve_grid(grid, options); });
  const std::uint16_t port = port_promise.get_future().get();

  WorkerOptions worker;
  worker.port = port;
  worker.name = "poisoned";
  worker.renew_fraction = 0.0;  // expiry semantics under test, no renewer
  const WorkerReport worker_report = run_worker(grid, worker);
  coordinator.join();

  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.leases_expired, 1u);  // the poisoned grant
  EXPECT_EQ(report.leases_granted, report.trials_total + 1);
  EXPECT_GE(worker_report.leases_lost, 1u);
  EXPECT_EQ(worker_report.trials_completed, report.trials_total);
  EXPECT_EQ(persist::slurp_file(manifest), reference);
  std::remove(manifest.c_str());
}

// A worker whose local retry budget is exhausted hands the trial back
// (requeue) instead of wedging it; the coordinator re-grants and the
// trial lands on a later lease with the exact same bytes.
TEST_F(Serve, WorkerRequeueReturnsTheTrialForRegrant) {
  const sweep::SweepGrid grid = load_balancing_grid();
  const std::string reference =
      reference_manifest_bytes(grid, "serve_requeue_ref.manifest");

  const std::string manifest = temp_path("serve_requeue_fleet.manifest");
  std::remove(manifest.c_str());
  std::promise<std::uint16_t> port_promise;
  const CoordinatorOptions options =
      coordinator_options(manifest, port_promise);

  // First trial attempt fails; with trial_max_attempts=1 the worker has
  // no local retry left and must requeue.
  util::configure_faults("sweep.trial:err:hit=1");

  CoordinatorReport report;
  std::thread coordinator([&] { report = serve_grid(grid, options); });
  const std::uint16_t port = port_promise.get_future().get();

  WorkerOptions worker;
  worker.port = port;
  worker.name = "requeuer";
  worker.trial_max_attempts = 1;
  const WorkerReport worker_report = run_worker(grid, worker);
  coordinator.join();

  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.requeues, 1u);
  EXPECT_EQ(worker_report.trials_requeued, 1u);
  EXPECT_EQ(worker_report.trials_completed, report.trials_total);
  EXPECT_EQ(persist::slurp_file(manifest), reference);
  std::remove(manifest.c_str());
}

// Restarting the coordinator over a completed live manifest resumes every
// trial — no worker needed — and the canonical rewrite is stable: serving
// twice produces the same bytes as serving once, which are the local
// run's bytes.
TEST_F(Serve, ResumedManifestServesToCompletionWithoutWorkers) {
  const sweep::SweepGrid grid = singleton_grid();
  const std::string reference =
      reference_manifest_bytes(grid, "serve_resume_ref.manifest");

  const std::string manifest = temp_path("serve_resume.manifest");
  std::remove(manifest.c_str());
  {
    std::promise<std::uint16_t> port_promise;
    const CoordinatorOptions options =
        coordinator_options(manifest, port_promise);
    CoordinatorReport report;
    std::thread coordinator([&] { report = serve_grid(grid, options); });
    const std::uint16_t port = port_promise.get_future().get();
    WorkerOptions worker;
    worker.port = port;
    run_worker(grid, worker);
    coordinator.join();
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.trials_resumed, 0u);
  }
  {
    std::promise<std::uint16_t> port_promise;
    const CoordinatorOptions options =
        coordinator_options(manifest, port_promise);
    const CoordinatorReport report = serve_grid(grid, options);
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.trials_resumed, report.trials_total);
    EXPECT_EQ(report.leases_granted, 0u);
  }
  EXPECT_EQ(persist::slurp_file(manifest), reference);
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace cid::serve
