#include <gtest/gtest.h>

#include <array>

#include "game/builders.hpp"
#include "game/singleton.hpp"
#include "util/assert.hpp"

namespace cid {
namespace {

TEST(LinearSingleton, AnalysisClosedForms) {
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(2.0),
                              make_linear(4.0)};
  const auto game = make_singleton_game(std::move(fns), 70);
  const auto a = analyze_linear_singleton(game);
  EXPECT_DOUBLE_EQ(a.a_gamma, 1.0 + 0.5 + 0.25);
  EXPECT_DOUBLE_EQ(a.fractional_cost, 70.0 / 1.75);  // = 40
  // x̃_e = n/(A·a_e) : 40, 20, 10 — each link at latency 40.
  EXPECT_DOUBLE_EQ(a.fractional_opt[0], 40.0);
  EXPECT_DOUBLE_EQ(a.fractional_opt[1], 20.0);
  EXPECT_DOUBLE_EQ(a.fractional_opt[2], 10.0);
  EXPECT_FALSE(a.any_useless);
}

TEST(LinearSingleton, FractionalOptimumHasEqualLatencies) {
  std::vector<LatencyPtr> fns{make_linear(3.0), make_linear(5.0),
                              make_linear(7.0)};
  const auto game = make_singleton_game(std::move(fns), 100);
  const auto a = analyze_linear_singleton(game);
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_NEAR(a.coefficients[e] * a.fractional_opt[e], a.fractional_cost,
                1e-9);
  }
}

TEST(LinearSingleton, DetectsUselessResources) {
  // A huge coefficient makes x̃ < 1.
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1000.0)};
  const auto game = make_singleton_game(std::move(fns), 3);
  const auto a = analyze_linear_singleton(game);
  EXPECT_TRUE(a.any_useless);
  EXPECT_FALSE(a.useless[0]);
  EXPECT_TRUE(a.useless[1]);
}

TEST(LinearSingleton, AcceptsPolynomialFormRejectsOthers) {
  // {0, a} polynomial counts as linear.
  std::vector<LatencyPtr> ok{make_polynomial({0.0, 2.0}), make_linear(1.0)};
  EXPECT_NO_THROW(
      analyze_linear_singleton(make_singleton_game(std::move(ok), 4)));
  std::vector<LatencyPtr> affine{make_affine(1.0, 1.0), make_linear(1.0)};
  EXPECT_THROW(
      analyze_linear_singleton(make_singleton_game(std::move(affine), 4)),
      invariant_violation);
  std::vector<LatencyPtr> quad{make_monomial(1.0, 2.0), make_linear(1.0)};
  EXPECT_THROW(
      analyze_linear_singleton(make_singleton_game(std::move(quad), 4)),
      invariant_violation);
}

TEST(LinearSingleton, RejectsNonSingletonGames) {
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0)};
  CongestionGame game(std::move(fns), {{0, 1}}, 4);
  EXPECT_THROW(analyze_linear_singleton(game), invariant_violation);
}

TEST(SocialCost, EqualsAverageLatency) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  EXPECT_DOUBLE_EQ(social_cost(game, x), 5.8);
  EXPECT_DOUBLE_EQ(makespan(game, x), 7.0);
}

TEST(Makespan, IgnoresEmptyStrategies) {
  std::vector<LatencyPtr> fns{make_linear(1.0), make_constant(99.0)};
  const auto game = make_singleton_game(std::move(fns), 5);
  const State x(game, {5, 0});
  EXPECT_DOUBLE_EQ(makespan(game, x), 5.0);
}

TEST(Extinction, DetectedOnlyWhenUsedBecomesEmpty) {
  const auto game = make_uniform_links_game(3, make_linear(1.0), 9);
  State before(game, {3, 3, 3});
  State after_ok(game, {4, 3, 2});
  State after_bad(game, {6, 3, 0});
  EXPECT_FALSE(any_resource_extinct(before, after_ok));
  EXPECT_TRUE(any_resource_extinct(before, after_bad));
  // A resource empty in both states is not an extinction event.
  State before2(game, {6, 3, 0});
  State after2(game, {5, 4, 0});
  EXPECT_FALSE(any_resource_extinct(before2, after2));
}

}  // namespace
}  // namespace cid
