#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cid {
namespace {

TEST(RunningStat, MatchesClosedForm) {
  RunningStat rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.sem(), rs.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(RunningStat, DegenerateCases) {
  RunningStat rs;
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(3.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.sem(), 0.0);
  EXPECT_EQ(rs.mean(), 3.0);
}

TEST(Quantile, InterpolatesType7) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), invariant_violation);
  EXPECT_THROW(quantile(xs, 1.5), invariant_violation);
}

TEST(Summarize, FiveNumberSummary) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
}

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, RejectsDegenerateInput) {
  EXPECT_THROW(
      linear_fit(std::vector<double>{1.0}, std::vector<double>{1.0}),
      invariant_violation);
  EXPECT_THROW(linear_fit(std::vector<double>{1.0, 1.0},
                          std::vector<double>{1.0, 2.0}),
               invariant_violation);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.7));
  }
  const LinearFit fit = log_log_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 1.7, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
  EXPECT_THROW(log_log_fit(std::vector<double>{0.0, 1.0},
                           std::vector<double>{1.0, 2.0}),
               invariant_violation);
}

TEST(Bootstrap, CiContainsTruthForWellBehavedSample) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(5.0 + rng.uniform());
  const BootstrapCi ci = bootstrap_mean_ci(xs, 0.95, 2000, rng);
  EXPECT_LT(ci.lo, 5.5);
  EXPECT_GT(ci.hi, 5.5);
  EXPECT_LT(ci.hi - ci.lo, 0.2);
}

TEST(ChiSquare, ZeroForPerfectFit) {
  const std::vector<double> obs{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(chi_square_statistic(obs, obs), 0.0);
  EXPECT_THROW(chi_square_statistic(obs, std::vector<double>{1.0, 2.0}),
               invariant_violation);
}

}  // namespace
}  // namespace cid
