// Tests for the convergence-telemetry channel (src/obs/telemetry.hpp) and
// its purity contract: recording consumes no RNG and changes no output
// (trial outcomes, final states, RNG stream positions identical on and
// off, at every row-thread count, through both engines), a killed leg's
// series plus the resumed leg's concatenates bitwise to the uninterrupted
// series, and a zero-RNG replay from a snapshot + event log regenerates
// the live capture byte for byte.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "dynamics/engine.hpp"
#include "dynamics/equilibrium.hpp"
#include "game/builders.hpp"
#include "game/singleton.hpp"
#include "game/state.hpp"
#include "obs/telemetry.hpp"
#include "persist/binio.hpp"
#include "persist/checkpoint.hpp"
#include "persist/eventlog.hpp"
#include "persist/snapshot.hpp"
#include "protocols/imitation.hpp"
#include "sweep/scenario.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- Record semantics -------------------------------------------------------

TEST(TelemetryRecord, FieldsAreExactFunctionsOfTheObservedState) {
  auto game = make_uniform_links_game(5, make_linear(1.0), 120);
  Rng rng(3);
  const State x = State::uniform_random(game, rng);
  const std::vector<Migration> moves = {{0, 1, 4}, {2, 3, 1}};
  const obs::TelemetryRecord rec =
      obs::make_telemetry_record(game, x, moves, 17, false);
  EXPECT_EQ(rec.round, 17);
  EXPECT_FALSE(rec.final_record);
  EXPECT_EQ(rec.phi, game.potential(x));
  EXPECT_EQ(rec.l_av, game.average_latency(x));
  EXPECT_EQ(rec.l_plus_av, game.plus_average_latency(x));
  EXPECT_EQ(rec.makespan, makespan(game, x));
  EXPECT_EQ(rec.movers, 5);
  EXPECT_EQ(rec.support, static_cast<std::int64_t>(x.support().size()));
  LatencyContext ctx;
  ctx.reset(game, x);
  EXPECT_EQ(rec.im_gap, imitation_gap(ctx));
}

TEST(TelemetryRecorder, SamplesEveryNthRoundAndBuffersTheFinal) {
  auto game = make_uniform_links_game(4, make_linear(1.0), 60);
  Rng rng(9);
  const State x = State::uniform_random(game, rng);
  obs::TelemetryRecorder recorder(3);
  EXPECT_THROW(obs::TelemetryRecorder(0), std::invalid_argument);
  for (std::int64_t round = 0; round < 7; ++round) {
    recorder.observe(game, x, {}, round, false);
  }
  recorder.observe(game, x, {}, 7, true);
  if (!obs::kMetricsCompiled) {
    recorder.finish(true);
    EXPECT_TRUE(recorder.records().empty());
    return;
  }
  // Rounds 0, 3, 6 sampled; the final observation is held back until the
  // caller resolves convergence.
  ASSERT_EQ(recorder.records().size(), 3u);
  EXPECT_EQ(recorder.records().back().round, 6);
  recorder.finish(true);
  ASSERT_EQ(recorder.records().size(), 4u);
  EXPECT_TRUE(recorder.records().back().final_record);
  EXPECT_EQ(recorder.records().back().round, 7);
  EXPECT_EQ(recorder.records().back().movers, 0);

  // A non-converged (killed) run drops the buffered final record — that
  // is what makes kill/resume series concatenate bitwise.
  obs::TelemetryRecorder killed(3);
  killed.observe(game, x, {}, 0, false);
  killed.observe(game, x, {}, 1, true);
  killed.finish(false);
  ASSERT_EQ(killed.records().size(), 1u);
  EXPECT_FALSE(killed.records().back().final_record);
}

// ---- Zero perturbation: the symmetric engines -------------------------------

struct EngineRun {
  RunResult result;
  State state;
  std::array<std::uint64_t, 4> rng_state;
  std::vector<obs::TelemetryRecord> telemetry;
};

EngineRun run_engine(EngineMode mode, int row_threads, bool telemetry) {
  auto game = make_uniform_links_game(6, make_linear(1.0), 400);
  Rng rng(1234);
  State x = State::uniform_random(game, rng);
  ImitationProtocol protocol;
  RunOptions options;
  options.max_rounds = 60;
  options.mode = mode;
  options.row_threads = row_threads;
  auto stop = [](const CongestionGame& g, const State& s, std::int64_t) {
    return is_imitation_stable(g, s, g.nu());
  };
  obs::TelemetryRecorder recorder(2);
  const RunResult result =
      run_dynamics(game, x, protocol, rng, options, stop,
                   telemetry ? recorder.observer() : RoundObserver{});
  recorder.finish(result.converged);
  return {result, std::move(x), rng.state(), recorder.take_records()};
}

TEST(TelemetryZeroPerturbation, EngineOutputsIdenticalOnAndOff) {
  for (const EngineMode mode :
       {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    std::vector<obs::TelemetryRecord> baseline;
    for (const int row_threads : {1, 2, 4}) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " row_threads=" + std::to_string(row_threads));
      const EngineRun off = run_engine(mode, row_threads, false);
      const EngineRun on = run_engine(mode, row_threads, true);
      EXPECT_EQ(on.result.rounds, off.result.rounds);
      EXPECT_EQ(on.result.converged, off.result.converged);
      EXPECT_EQ(on.result.total_movers, off.result.total_movers);
      EXPECT_EQ(on.result.latency_evals, off.result.latency_evals);
      EXPECT_EQ(on.state, off.state);
      // The strongest form of "zero RNG": the generator is at the exact
      // same stream position after a recorded run.
      EXPECT_EQ(on.rng_state, off.rng_state);
      if (obs::kMetricsCompiled) {
        EXPECT_FALSE(on.telemetry.empty());
      } else {
        EXPECT_TRUE(on.telemetry.empty());
      }
      // The series itself is a pure function of the trial, so every
      // row-thread count records the identical records.
      if (row_threads == 1) baseline = on.telemetry;
      EXPECT_EQ(on.telemetry, baseline);
    }
  }
}

// ---- Zero perturbation: scenario families -----------------------------------

TEST(TelemetryZeroPerturbation, ScenarioTrialsIdenticalOnAndOff) {
  struct Case {
    const char* scenario;
    std::int64_t n;
    bool expects_series;
  };
  // Symmetric, asymmetric (class-local loop), and the round-less
  // threshold family, which documents an always-empty series.
  for (const Case c : {Case{"singleton-uniform", 60, true},
                       Case{"multicommodity", 48, true},
                       Case{"threshold-lb", 9, false}}) {
    SCOPED_TRACE(c.scenario);
    sweep::ScenarioSpec spec;
    spec.name = c.scenario;
    const auto instance = sweep::make_scenario(spec, c.n);
    sweep::ProtocolSpec protocol;
    sweep::DynamicsConfig dynamics;
    dynamics.max_rounds = 300;

    Rng rng_off(5);
    const sweep::TrialOutcome off =
        instance->run_trial(protocol, dynamics, rng_off);

    dynamics.telemetry_every = 2;
    sweep::TrialStats stats;
    Rng rng_on(5);
    const sweep::TrialOutcome on =
        instance->run_trial(protocol, dynamics, rng_on, &stats);

    EXPECT_EQ(on, off);
    EXPECT_EQ(rng_on.state(), rng_off.state());
    if (c.expects_series && obs::kMetricsCompiled) {
      ASSERT_FALSE(stats.telemetry.empty());
      EXPECT_EQ(stats.telemetry.front().round, 0);
      if (on.converged) {
        EXPECT_TRUE(stats.telemetry.back().final_record);
        EXPECT_EQ(stats.telemetry.back().round,
                  static_cast<std::int64_t>(on.rounds));
      }
    } else {
      EXPECT_TRUE(stats.telemetry.empty());
    }
  }
}

TEST(TelemetryZeroPerturbation,
     AsymmetricSeriesIdenticalAcrossKernelsAndRowThreads) {
  sweep::ScenarioSpec spec;
  spec.name = "multicommodity";
  const auto instance = sweep::make_scenario(spec, 48);
  sweep::ProtocolSpec protocol;

  auto run = [&](bool reference_kernel, int row_threads) {
    sweep::DynamicsConfig dynamics;
    dynamics.max_rounds = 300;
    dynamics.telemetry_every = 2;
    dynamics.reference_kernel = reference_kernel;
    dynamics.row_threads = row_threads;
    sweep::TrialStats stats;
    Rng rng(21);
    instance->run_trial(protocol, dynamics, rng, &stats);
    return stats.telemetry;
  };

  // The reference per-pair oracle and the batched cached-latency kernel
  // are bitwise-equivalent, and row fills are thread-count invariant —
  // the telemetry series must inherit both properties exactly.
  const auto baseline = run(false, 1);
  if (obs::kMetricsCompiled) {
    ASSERT_FALSE(baseline.empty());
  }
  EXPECT_EQ(run(true, 1), baseline);
  EXPECT_EQ(run(false, 2), baseline);
  EXPECT_EQ(run(false, 4), baseline);
}

// ---- Kill/resume concatenation ----------------------------------------------

TEST(TelemetryResume, KilledPlusResumedSeriesConcatenatesBitwise) {
  sweep::ScenarioSpec spec;
  spec.name = "singleton-uniform";
  const auto instance = sweep::make_scenario(spec, 80);
  sweep::ProtocolSpec protocol;
  sweep::DynamicsConfig full;
  full.max_rounds = 2000;
  // Tight (delta, eps): the trial needs ~20 rounds, so the round-10 kill
  // below lands mid-run and both legs record something.
  full.delta = 0.01;
  full.eps = 0.01;
  full.telemetry_every = 3;

  sweep::TrialStats uninterrupted;
  Rng rng_full(11);
  const sweep::TrialOutcome expect =
      instance->run_trial(protocol, full, rng_full, &uninterrupted);
  ASSERT_TRUE(expect.converged);
  ASSERT_GT(expect.rounds, 10.0);

  // "Kill" the trial by capping its round budget mid-run; the exit
  // snapshot is the restart point a real kill would leave behind.
  const std::string snap = temp_path("cid_telemetry_resume.snap");
  sweep::DynamicsConfig killed = full;
  killed.max_rounds = 10;
  sweep::TrialStats first_leg;
  Rng rng_killed(11);
  instance->run_trial_checkpointed(protocol, killed, rng_killed, {snap, 0},
                                   &first_leg);

  sweep::TrialStats second_leg;
  const sweep::TrialOutcome resumed =
      instance->resume_trial(protocol, full, snap, &second_leg);
  EXPECT_EQ(resumed, expect);

  // Absolute-round sampling + the suppressed final record on the killed
  // leg make the two legs concatenate to the uninterrupted series.
  std::vector<obs::TelemetryRecord> joined = first_leg.telemetry;
  joined.insert(joined.end(), second_leg.telemetry.begin(),
                second_leg.telemetry.end());
  EXPECT_EQ(joined, uninterrupted.telemetry);
  if (obs::kMetricsCompiled) {
    ASSERT_FALSE(first_leg.telemetry.empty());
    EXPECT_FALSE(first_leg.telemetry.back().final_record);
    ASSERT_FALSE(second_leg.telemetry.empty());
    EXPECT_GE(second_leg.telemetry.front().round, 10);
  }

  // And the serialized artifacts concatenate bitwise too.
  const std::string f_full = temp_path("cid_telemetry_full.jsonl");
  const std::string f_a = temp_path("cid_telemetry_leg_a.jsonl");
  const std::string f_b = temp_path("cid_telemetry_leg_b.jsonl");
  obs::write_telemetry_file(f_full, uninterrupted.telemetry);
  obs::write_telemetry_file(f_a, first_leg.telemetry);
  obs::write_telemetry_file(f_b, second_leg.telemetry);
  EXPECT_EQ(persist::slurp_file(f_a) + persist::slurp_file(f_b),
            persist::slurp_file(f_full));
  for (const std::string& p : {snap, f_full, f_a, f_b}) {
    std::remove(p.c_str());
  }
}

// ---- Live-vs-replay equality ------------------------------------------------

TEST(TelemetryReplay, ReplayedSeriesIsByteIdenticalToLiveCapture) {
  auto game = make_uniform_links_game(6, make_linear(1.0), 300);
  Rng rng(77);
  State x = State::uniform_random(game, rng);
  ImitationProtocol protocol;

  // Round-0 snapshot + full event log: exactly what cid_sim persists.
  persist::SimConfig config;
  config.protocol = "imitation";
  config.stop = "stable";
  const std::string snap = temp_path("cid_telemetry_replay.snap");
  const std::string elog = temp_path("cid_telemetry_replay.elog");
  persist::save_snapshot(persist::make_snapshot(game, x, rng, 0, config),
                         snap);

  obs::TelemetryRecorder live(3);
  RunOptions options;
  options.max_rounds = 200;
  RunResult result;
  {
    auto writer = persist::EventLogWriter::create(elog);
    result = run_dynamics(
        game, x, protocol, rng, options, persist::stop_from_spec(config.stop),
        persist::chain_observers(writer.observer(), live.observer()));
    writer.close();
  }
  live.finish(result.converged);
  ASSERT_TRUE(result.converged);

  // Replay leg: walk the log against the snapshot state, observing each
  // pre-round state with that round's logged moves — zero RNG draws —
  // then mirror the final observer call and resolve convergence through
  // the recorded stop spec (cid_replay telemetry does exactly this).
  const persist::Snapshot snapshot = persist::load_snapshot(snap);
  const persist::EventLog log = persist::read_event_log_series(elog);
  State replayed = snapshot.state();
  obs::TelemetryRecorder offline(3);
  std::int64_t round = snapshot.round;
  for (const persist::RoundEvents& events : log.rounds) {
    offline.observe(snapshot.game, replayed, events.moves, events.round,
                    false);
    replayed.apply(snapshot.game, events.moves);
    round = events.round + 1;
  }
  offline.observe(snapshot.game, replayed, {}, round, true);
  offline.finish(persist::stop_from_spec(snapshot.config.stop)(
      snapshot.game, replayed, round));

  EXPECT_EQ(replayed, x);
  EXPECT_EQ(offline.records(), live.records());

  const std::string f_live = temp_path("cid_telemetry_live.jsonl");
  const std::string f_replay = temp_path("cid_telemetry_replayed.jsonl");
  obs::write_telemetry_file(f_live, live.records());
  obs::write_telemetry_file(f_replay, offline.records());
  EXPECT_EQ(persist::slurp_file(f_replay), persist::slurp_file(f_live));
  for (const std::string& p : {snap, elog, f_live, f_replay}) {
    std::remove(p.c_str());
  }
}

// ---- Serialization and aggregates -------------------------------------------

TEST(TelemetrySerialization, JsonCsvAndSummary) {
  obs::TelemetryRecord a;
  a.round = 0;
  a.phi = 100.0;
  a.movers = 3;
  obs::TelemetryRecord b;
  b.round = 4;
  b.phi = 55.0;
  obs::TelemetryRecord c;
  c.round = 8;
  c.phi = 52.0;
  obs::TelemetryRecord fin;
  fin.round = 9;
  fin.phi = 52.0;
  fin.final_record = true;
  const std::vector<obs::TelemetryRecord> series = {a, b, c, fin};

  const std::string line = obs::telemetry_json_line(a);
  EXPECT_EQ(line.rfind("{\"telemetry_version\":1,\"kind\":\"round\"", 0), 0u)
      << line;
  EXPECT_NE(line.find("\"movers\":3"), std::string::npos);
  EXPECT_NE(obs::telemetry_json_line(fin).find("\"kind\":\"final\""),
            std::string::npos);
  EXPECT_EQ(obs::telemetry_csv_header().rfind("kind,round,phi", 0), 0u);

  // Φ drop is 48; within 10% of final means Φ <= 56.8 (round 4), within
  // 50% means Φ <= 76 (also round 4 — the drop front-loads).
  EXPECT_EQ(obs::rounds_to_phi_fraction(series, 0.1), 4);
  const obs::TelemetrySummary summary = obs::summarize_telemetry(series);
  EXPECT_EQ(summary.phi_first, 100.0);
  EXPECT_EQ(summary.phi_last, 52.0);
  EXPECT_EQ(summary.rounds_to_eps, 4);
  EXPECT_EQ(summary.phi_half_life, 4);
  EXPECT_EQ(obs::rounds_to_phi_fraction({}, 0.1), -1);
  // A flat series "converges" immediately.
  EXPECT_EQ(obs::rounds_to_phi_fraction({&c, 1}, 0.1), 8);

  // The file writer picks the format from the extension and reports its
  // bytes through the persist I/O counters.
  const std::string f_csv = temp_path("cid_telemetry_fmt.csv");
  const obs::PersistIoTotals before = obs::persist_io_totals();
  const std::uint64_t bytes = obs::write_telemetry_file(f_csv, series);
  const std::string text = persist::slurp_file(f_csv);
  EXPECT_EQ(text.size(), bytes);
  EXPECT_EQ(text.rfind(obs::telemetry_csv_header(), 0), 0u);
  if (obs::kMetricsCompiled) {
    EXPECT_EQ(obs::persist_io_totals().bytes_written - before.bytes_written,
              static_cast<std::int64_t>(bytes));
  }
  std::remove(f_csv.c_str());
}

}  // namespace
}  // namespace cid
