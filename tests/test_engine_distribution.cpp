// Distribution-level equivalence of the two engines: beyond matching means
// and variances (test_engine.cpp), the full mover-count law of one round
// must agree — checked with a two-sample chi-square on binned counts, and
// the aggregate engine's law must match the analytic Binomial(n_P, p_PQ)
// pmf exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "dynamics/engine.hpp"
#include "game/builders.hpp"
#include "game/latency_context.hpp"
#include "protocols/imitation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cid {
namespace {

std::vector<double> mover_histogram(const CongestionGame& game,
                                    const State& x, const Protocol& protocol,
                                    EngineMode mode, int draws,
                                    std::size_t max_bin, std::uint64_t seed) {
  std::vector<double> hist(max_bin + 1, 0.0);
  Rng rng(seed);
  for (int i = 0; i < draws; ++i) {
    const RoundResult rr = draw_round(game, x, protocol, rng, mode);
    std::size_t movers = 0;
    for (const auto& mv : rr.moves) {
      movers += static_cast<std::size_t>(mv.count);
    }
    hist[std::min(movers, max_bin)] += 1.0;
  }
  return hist;
}

TEST(EngineDistribution, TwoSampleChiSquareAgreement) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 200);
  const State x(game, {150, 50});
  const ImitationProtocol protocol;
  const double p = protocol.move_probability(game, x, 0, 1);
  const double mean = 150.0 * p;
  const auto max_bin =
      static_cast<std::size_t>(mean + 6.0 * std::sqrt(mean) + 2.0);
  const int kDraws = 30000;
  const auto a = mover_histogram(game, x, protocol, EngineMode::kAggregate,
                                 kDraws, max_bin, 11);
  const auto b = mover_histogram(game, x, protocol, EngineMode::kPerPlayer,
                                 kDraws, max_bin, 22);
  // Merge sparse bins (< 10 expected) then two-sample chi-square:
  // X² = Σ (a_i − b_i)² / (a_i + b_i).
  double stat = 0.0;
  int bins = 0;
  double a_acc = 0.0, b_acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a_acc += a[i];
    b_acc += b[i];
    if (a_acc + b_acc >= 20.0) {
      stat += (a_acc - b_acc) * (a_acc - b_acc) / (a_acc + b_acc);
      ++bins;
      a_acc = b_acc = 0.0;
    }
  }
  if (a_acc + b_acc > 0.0) {
    stat += (a_acc - b_acc) * (a_acc - b_acc) / (a_acc + b_acc);
    ++bins;
  }
  // dof ≈ bins−1 (≈ 25); 1e-6-level threshold ≈ 70.
  EXPECT_LT(stat, 70.0) << "engines disagree in distribution (" << bins
                        << " bins)";
}

TEST(EngineDistribution, AggregateMatchesAnalyticBinomialPmf) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 100);
  const State x(game, {80, 20});
  const ImitationProtocol protocol;
  const double p = protocol.move_probability(game, x, 0, 1);
  const std::int64_t cohort = 80;
  // Exact pmf by recurrence.
  const auto max_bin = static_cast<std::size_t>(
      static_cast<double>(cohort) * p + 6.0 * std::sqrt(80.0 * p) + 3.0);
  std::vector<double> pmf(max_bin + 1, 0.0);
  pmf[0] = std::pow(1.0 - p, static_cast<double>(cohort));
  for (std::size_t k = 1; k <= max_bin; ++k) {
    pmf[k] = pmf[k - 1] * (p / (1.0 - p)) *
             static_cast<double>(cohort - static_cast<std::int64_t>(k) + 1) /
             static_cast<double>(k);
  }
  const int kDraws = 40000;
  const auto hist = mover_histogram(game, x, protocol,
                                    EngineMode::kAggregate, kDraws, max_bin,
                                    33);
  // Tail mass into the last bin.
  double tail = 1.0;
  for (std::size_t k = 0; k < max_bin; ++k) tail -= pmf[k];
  std::vector<double> expected(max_bin + 1);
  for (std::size_t k = 0; k < max_bin; ++k) expected[k] = pmf[k] * kDraws;
  expected[max_bin] = std::max(tail, 0.0) * kDraws;
  // Merge sparse bins and chi-square against the analytic law.
  std::vector<double> obs_b, exp_b;
  double o_acc = 0.0, e_acc = 0.0;
  for (std::size_t k = 0; k <= max_bin; ++k) {
    o_acc += hist[k];
    e_acc += expected[k];
    if (e_acc >= 10.0) {
      obs_b.push_back(o_acc);
      exp_b.push_back(e_acc);
      o_acc = e_acc = 0.0;
    }
  }
  if (e_acc > 0.0 && !exp_b.empty()) {
    obs_b.back() += o_acc;
    exp_b.back() += e_acc;
  }
  EXPECT_LT(chi_square_statistic(obs_b, exp_b), 60.0);
}

TEST(EngineDistribution, PruningPreservesDistributionAndRngStream) {
  // Three identical links with a skewed state: the lightest link's origin
  // is provably all-zero (its ℓ_P is the support minimum), so the batched
  // kernel prunes it, while the heavy origin keeps drawing. Pruning must
  // (a) actually fire, (b) consume the SAME RNG draws as the unpruned
  // per-pair path (bitwise-equal rounds with the same seed), and (c)
  // leave the mover-count law untouched — checked with the same
  // two-sample chi-square as the engine-vs-engine test, against the
  // per-pair reference path on an INDEPENDENT stream.
  const auto game = make_uniform_links_game(3, make_linear(1.0), 260);
  const State x(game, {200, 50, 10});
  const ImitationProtocol protocol;

  {  // (a) the prunable origin really is pruned
    LatencyContext ctx;
    ctx.reset(game, x);
    const RowBounds bounds = compute_row_bounds(game, x, ctx);
    ASSERT_TRUE(bounds.plus_dominates);
    EXPECT_TRUE(protocol.row_provably_zero(game, ctx, 2, bounds));
    EXPECT_FALSE(protocol.row_provably_zero(game, ctx, 0, bounds));
  }

  {  // (b) same seed ⇒ bitwise-equal rounds AND identical stream position
    Rng pruned_rng(55);
    Rng reference_rng(55);
    for (int i = 0; i < 200; ++i) {
      const RoundResult pruned = draw_round(
          game, x, protocol, pruned_rng, EngineMode::kAggregate);
      const RoundResult reference = draw_round_reference(
          game, x, protocol, reference_rng, EngineMode::kAggregate);
      ASSERT_EQ(pruned.moves, reference.moves) << "draw " << i;
      ASSERT_EQ(pruned_rng.state(), reference_rng.state()) << "draw " << i;
    }
  }

  // (c) distribution-level agreement on independent streams.
  const double p1 = protocol.move_probability(game, x, 0, 1);
  const double p2 = protocol.move_probability(game, x, 0, 2);
  const double mean = 200.0 * (p1 + p2);
  const auto max_bin =
      static_cast<std::size_t>(mean + 6.0 * std::sqrt(mean) + 2.0);
  const int kDraws = 30000;
  const auto pruned_hist = mover_histogram(
      game, x, protocol, EngineMode::kAggregate, kDraws, max_bin, 66);
  std::vector<double> reference_hist(max_bin + 1, 0.0);
  {
    Rng rng(77);
    for (int i = 0; i < kDraws; ++i) {
      const RoundResult rr = draw_round_reference(
          game, x, protocol, rng, EngineMode::kAggregate);
      std::size_t movers = 0;
      for (const auto& mv : rr.moves) {
        movers += static_cast<std::size_t>(mv.count);
      }
      reference_hist[std::min(movers, max_bin)] += 1.0;
    }
  }
  double stat = 0.0;
  int bins = 0;
  double a_acc = 0.0, b_acc = 0.0;
  for (std::size_t i = 0; i < pruned_hist.size(); ++i) {
    a_acc += pruned_hist[i];
    b_acc += reference_hist[i];
    if (a_acc + b_acc >= 20.0) {
      stat += (a_acc - b_acc) * (a_acc - b_acc) / (a_acc + b_acc);
      ++bins;
      a_acc = b_acc = 0.0;
    }
  }
  if (a_acc + b_acc > 0.0) {
    stat += (a_acc - b_acc) * (a_acc - b_acc) / (a_acc + b_acc);
    ++bins;
  }
  EXPECT_LT(stat, 70.0) << "pruned kernel drifted in distribution (" << bins
                        << " bins)";
}

TEST(EngineDistribution, MultiDestinationJointLawHasNegativeCorrelation) {
  // From one origin cohort the destination counts are jointly multinomial:
  // Cov(N_1, N_2) = −n·p1·p2 < 0. Check the sample covariance sign and
  // magnitude for both engines.
  std::vector<LatencyPtr> fns{make_linear(1.0), make_linear(1.0),
                              make_linear(1.0)};
  const auto game = make_singleton_game(std::move(fns), 300);
  const State x(game, {260, 20, 20});
  ImitationParams params;
  params.lambda = 1.0;
  params.nu_cutoff = false;
  const ImitationProtocol protocol(params);
  const double p1 = protocol.move_probability(game, x, 0, 1);
  const double p2 = protocol.move_probability(game, x, 0, 2);
  const double expected_cov = -260.0 * p1 * p2;
  for (EngineMode mode : {EngineMode::kAggregate, EngineMode::kPerPlayer}) {
    Rng rng(44);
    const int kDraws = 20000;
    double s1 = 0.0, s2 = 0.0, s12 = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const RoundResult rr = draw_round(game, x, protocol, rng, mode);
      double n1 = 0.0, n2 = 0.0;
      for (const auto& mv : rr.moves) {
        if (mv.to == 1) n1 += static_cast<double>(mv.count);
        if (mv.to == 2) n2 += static_cast<double>(mv.count);
      }
      s1 += n1;
      s2 += n2;
      s12 += n1 * n2;
    }
    const double cov = s12 / kDraws - (s1 / kDraws) * (s2 / kDraws);
    EXPECT_LT(cov, 0.0) << "mode=" << static_cast<int>(mode);
    EXPECT_NEAR(cov, expected_cov, 0.35 * std::abs(expected_cov) + 0.05)
        << "mode=" << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace cid
