// Protocol-law tests: the migration probabilities of Protocol 1 and 2 are
// checked against hand-computed values, including the ν cutoff, the 1/d
// damping, sampling conventions, and the combined protocol's mixture law.
#include <gtest/gtest.h>

#include "game/builders.hpp"
#include "protocols/combined.hpp"
#include "protocols/exploration.hpp"
#include "protocols/imitation.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cid {
namespace {

TEST(ImitationProtocol, HandComputedProbability) {
  // Two linear links a=1, n=10, x=(7,3): ℓ_0=7, ex-post ℓ_1(x+1)=4, ν=1,
  // d=1 (linear). Gain test 7 > 4+1 passes. μ = λ·(7−4)/7; sampling 3/9.
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  ImitationParams params;
  params.lambda = 0.25;
  const ImitationProtocol protocol(params);
  const double mu = protocol.acceptance_probability(game, x, 0, 1);
  EXPECT_NEAR(mu, 0.25 * 3.0 / 7.0, 1e-12);
  const double p = protocol.move_probability(game, x, 0, 1);
  EXPECT_NEAR(p, (3.0 / 9.0) * mu, 1e-12);
  // Reverse direction is not improving.
  EXPECT_DOUBLE_EQ(protocol.move_probability(game, x, 1, 0), 0.0);
}

TEST(ImitationProtocol, NuCutoffSuppressesSmallGains) {
  // x=(6,4): gain = 6 − 5 = 1 which is NOT > ν=1 → no move.
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {6, 4});
  const ImitationProtocol with_nu;
  EXPECT_DOUBLE_EQ(with_nu.move_probability(game, x, 0, 1), 0.0);
  // Dropping the cutoff (Theorem 9 regime) restores a strict-gain move...
  ImitationParams params;
  params.nu_cutoff = false;
  const ImitationProtocol without_nu(params);
  EXPECT_GT(without_nu.move_probability(game, x, 0, 1), 0.0);
  // ...but (5,5) has zero gain and still no move.
  const State balanced(game, {5, 5});
  EXPECT_DOUBLE_EQ(without_nu.move_probability(game, balanced, 0, 1), 0.0);
}

TEST(ImitationProtocol, DampingDividesByElasticity) {
  // d = 3 for cubic latencies; with damping μ scales by 1/3.
  const auto game = make_uniform_links_game(2, make_monomial(1.0, 3.0), 12);
  const State x(game, {9, 3});
  ImitationParams damped;
  damped.lambda = 0.3;
  ImitationParams undamped = damped;
  undamped.damping = false;
  const ImitationProtocol a(damped), b(undamped);
  const double mu_damped = a.acceptance_probability(game, x, 0, 1);
  const double mu_undamped = b.acceptance_probability(game, x, 0, 1);
  ASSERT_GT(mu_damped, 0.0);
  EXPECT_NEAR(mu_undamped / mu_damped, 3.0, 1e-9);
}

TEST(ImitationProtocol, SamplingConventions) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  ImitationParams incl;
  incl.convention = SamplingConvention::kIncludeSelf;
  const ImitationProtocol p_excl, p_incl(incl);
  const double ratio = p_excl.move_probability(game, x, 0, 1) /
                       p_incl.move_probability(game, x, 0, 1);
  EXPECT_NEAR(ratio, 10.0 / 9.0, 1e-12);
}

TEST(ImitationProtocol, CannotDiscoverUnusedStrategies) {
  const auto game = make_uniform_links_game(3, make_linear(1.0), 10);
  const State x(game, {10, 0, 0});
  const ImitationProtocol protocol;
  EXPECT_DOUBLE_EQ(protocol.move_probability(game, x, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(protocol.move_probability(game, x, 0, 2), 0.0);
}

TEST(ImitationProtocol, OverridesRespected) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  ImitationParams params;
  params.lambda = 0.25;
  params.nu_override = 100.0;  // kills every move
  const ImitationProtocol strict(params);
  EXPECT_DOUBLE_EQ(strict.move_probability(game, x, 0, 1), 0.0);
  ImitationParams params2;
  params2.lambda = 0.25;
  params2.elasticity_override = 5.0;
  const ImitationProtocol damped5(params2);
  EXPECT_NEAR(damped5.acceptance_probability(game, x, 0, 1),
              0.25 / 5.0 * 3.0 / 7.0, 1e-12);
}

TEST(ImitationProtocol, ValidatesParams) {
  ImitationParams bad;
  bad.lambda = 0.0;
  EXPECT_THROW(ImitationProtocol{bad}, invariant_violation);
  ImitationParams bad2;
  bad2.elasticity_override = 0.5;
  EXPECT_THROW(ImitationProtocol{bad2}, invariant_violation);
}

TEST(ImitationProtocol, SumOfMoveProbabilitiesAtMostOne) {
  const auto game = make_uniform_links_game(8, make_linear(1.0), 64);
  Rng rng(5);
  const ImitationProtocol protocol;
  for (int trial = 0; trial < 20; ++trial) {
    const State x = State::uniform_random(game, rng);
    for (StrategyId p : x.support()) {
      double total = 0.0;
      for (StrategyId q = 0; q < game.num_strategies(); ++q) {
        if (q != p) total += protocol.move_probability(game, x, p, q);
      }
      EXPECT_LE(total, 1.0 + 1e-12);
    }
  }
}

TEST(ImitationProtocol, VirtualAgentsRestoreInnovativeness) {
  // §6 second alternative: with v virtual agents per strategy, unused
  // strategies keep a non-zero sampling probability.
  const auto game = make_uniform_links_game(3, make_linear(1.0), 12);
  const State x(game, {12, 0, 0});
  ImitationParams params;
  params.virtual_agents = 1;
  params.nu_cutoff = false;
  const ImitationProtocol protocol(params);
  const double p = protocol.move_probability(game, x, 0, 1);
  // Sampling: (0 + 1)/(12 − 1 + 3) = 1/14; gain (12 − 1)/12; λ/d = 1/4.
  EXPECT_NEAR(p, (1.0 / 14.0) * 0.25 * (11.0 / 12.0), 1e-12);
  EXPECT_GT(protocol.move_probability(game, x, 0, 2), 0.0);
  EXPECT_THROW(ImitationProtocol([] {
                 ImitationParams bad;
                 bad.virtual_agents = -1;
                 return bad;
               }()),
               invariant_violation);
  EXPECT_NE(protocol.name().find("virtual=1"), std::string::npos);
}

TEST(ImitationProtocol, VirtualAgentsKeepProbabilitySumBounded) {
  const auto game = make_uniform_links_game(8, make_linear(1.0), 40);
  Rng rng(6);
  ImitationParams params;
  params.virtual_agents = 3;
  params.nu_cutoff = false;
  params.lambda = 1.0;
  const ImitationProtocol protocol(params);
  for (int trial = 0; trial < 20; ++trial) {
    const State x = State::uniform_random(game, rng);
    for (StrategyId p = 0; p < game.num_strategies(); ++p) {
      if (x.count(p) == 0) continue;
      double total = 0.0;
      for (StrategyId q = 0; q < game.num_strategies(); ++q) {
        if (q != p) total += protocol.move_probability(game, x, p, q);
      }
      EXPECT_LE(total, 1.0 + 1e-12);
    }
  }
}

TEST(ExplorationProtocol, HandComputedProbability) {
  // 2 links a=1, n=10, x=(7,3): damping = min(1, |P|·ℓmin/(βn))
  // = min(1, 2·1/10) = 0.2. μ = λ·0.2·(7−4)/7, sampling 1/2.
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  ExplorationParams params;
  params.lambda = 0.5;
  const ExplorationProtocol protocol(params);
  EXPECT_NEAR(protocol.acceptance_probability(game, x, 0, 1),
              0.5 * 0.2 * 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(protocol.move_probability(game, x, 0, 1),
              0.5 * 0.5 * 0.2 * 3.0 / 7.0, 1e-12);
}

TEST(ExplorationProtocol, NoNuCutoffAndReachesEmptyStrategies) {
  const auto game = make_uniform_links_game(3, make_linear(1.0), 9);
  const State x(game, {9, 0, 0});
  const ExplorationProtocol protocol;
  EXPECT_GT(protocol.move_probability(game, x, 0, 1), 0.0);
  EXPECT_GT(protocol.move_probability(game, x, 0, 2), 0.0);
  // Tiny gains still move (no ν): x=(5,4): gain 5 - 5 = 0 → no; (6,3) gain 2.
  const State y(game, {6, 3, 0});
  EXPECT_GT(protocol.move_probability(game, y, 0, 1), 0.0);
}

TEST(CombinedProtocol, MixtureOfMarginals) {
  const auto game = make_uniform_links_game(2, make_linear(1.0), 10);
  const State x(game, {7, 3});
  ImitationParams ip;
  ExplorationParams ep;
  const ImitationProtocol imit(ip);
  const ExplorationProtocol expl(ep);
  const CombinedProtocol combined(ip, ep, 0.25);
  const double expect = 0.25 * expl.move_probability(game, x, 0, 1) +
                        0.75 * imit.move_probability(game, x, 0, 1);
  EXPECT_NEAR(combined.move_probability(game, x, 0, 1), expect, 1e-12);
  EXPECT_THROW(CombinedProtocol(ip, ep, 1.5), invariant_violation);
}

TEST(Protocols, Names) {
  EXPECT_NE(ImitationProtocol().name().find("imitation"), std::string::npos);
  EXPECT_NE(ExplorationProtocol().name().find("exploration"),
            std::string::npos);
  EXPECT_NE(CombinedProtocol(ImitationParams{}, ExplorationParams{})
                .name()
                .find("combined"),
            std::string::npos);
}

}  // namespace
}  // namespace cid
