// cid_serve — trial-lease coordinator for live distributed sweeps.
//
//   cid_serve --scenario NAME --manifest PATH
//             [--grid SPEC] [--protocols CSV] [--trials T] [--seed S]
//             [--rounds N] [--check-interval C] [--stop C] [--engine E]
//             [--param K=V ...] [--lambda L]
//             [--host H] [--port P] [--port-file F]
//             [--lease-ttl SEC] [--tick SEC] [--wait-backoff MS]
//             [--max-requeues N] [--max-seconds SEC]
//             [--final-manifest PATH]
//             [--metrics-http [PORT]] [--metrics-port-file F]
//             [--metrics-prom PATH]
//             [--inject-faults SPEC] [--verbose]
//
// Loads (or resumes) a manifest for the given grid, then serves the
// grid's trials as time-bounded leases to cid_sweep --connect workers
// over a length-prefixed JSON protocol (src/serve/proto.hpp). Expired,
// requeued, and dropped-connection leases are reclaimed and re-granted;
// because trial outcomes are a pure function of (grid, master_seed), the
// final canonical manifest is byte-identical to an unsharded
// `cid_sweep --threads 1` run's — whichever workers did the work, however
// many died along the way.
//
// The grid flags must MATCH the workers' flags: the handshake compares
// grid fingerprints and rejects mismatched workers, exactly like manifest
// resume does.
//
// --metrics-http exposes the fleet-level Prometheus text endpoint
// (coordinator serve.*/persist.* counters, the lease-latency histogram,
// plus the sum of every worker's pushed registry snapshot);
// --metrics-prom writes the same exposition to a file at exit.
//
// Exit status: 0 grid drained clean; 2 usage; 3 incomplete (trials
// exceeded --max-requeues, or --max-seconds elapsed); 1 fatal error.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cid/cid.hpp"
#include "serve/coordinator.hpp"
#include "serve/net.hpp"
#include "util/fault.hpp"

namespace {

using namespace cid;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: cid_serve --scenario NAME --manifest PATH [options]\n"
      "  grid (must match the workers' flags; the handshake checks the\n"
      "  grid fingerprint):\n"
      "  --scenario NAME   scenario to sweep\n"
      "  --grid SPEC       n axis: A:B:log[:K] | A:B:lin[:K] | v1,v2,...\n"
      "                    (default 1000:100000:log)\n"
      "  --protocols CSV   imitation,exploration,combined[:P]\n"
      "  --trials T        trials per cell, default 8\n"
      "  --seed S          master seed, default 1\n"
      "  --rounds N        round cap per trial, default 100000\n"
      "  --check-interval C  stop-check stride, default 1\n"
      "  --stop C          stable | nash | deltaeps:D,E\n"
      "  --engine E        aggregate (default) | perplayer\n"
      "  --param K=V       scenario parameter (repeatable)\n"
      "  --lambda L        protocol migration scale, default 0.25\n"
      "  serving:\n"
      "  --manifest PATH   live append manifest (required; an existing\n"
      "                    file resumes — its trials are never re-granted)\n"
      "  --final-manifest PATH  write the canonical (cell,trial)-sorted\n"
      "                    manifest here when the grid drains (default:\n"
      "                    rewrite --manifest in place)\n"
      "  --host H          bind address, default 127.0.0.1\n"
      "  --port P          lease port, default 0 (ephemeral)\n"
      "  --port-file F     write the bound lease port here\n"
      "  --lease-ttl SEC   lease time-to-live, default 30\n"
      "  --tick SEC        poll/expiry cadence, default 0.05\n"
      "  --wait-backoff MS backoff told to workers when all trials are\n"
      "                    leased, default 100\n"
      "  --max-requeues N  reclaims per trial before it is declared\n"
      "                    failed, default 8\n"
      "  --max-seconds SEC wall limit; exit 3 incomplete (default: none)\n"
      "  fleet metrics:\n"
      "  --metrics-http [PORT]  serve the fleet Prometheus text endpoint\n"
      "                    (0/omitted = ephemeral port)\n"
      "  --metrics-port-file F  write the bound metrics port here\n"
      "  --metrics-prom PATH    write the final fleet exposition here\n"
      "  other:\n"
      "  --inject-faults SPEC  arm deterministic fault injection (sites\n"
      "                    net.accept, serve.lease_expire, ...)\n"
      "  --verbose         per-event log on stderr\n");
  std::exit(error == nullptr ? 0 : 2);
}

struct Options {
  sweep::SweepGrid grid;
  serve::CoordinatorOptions serve;
  std::string fault_spec;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.grid.ns = sweep::parse_grid_axis("1000:100000:log");
  opt.grid.protocols = sweep::parse_protocol_list("imitation");
  double lambda = 0.25;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for flag");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(nullptr);
    else if (flag == "--scenario") opt.grid.scenario.name = need_value(i);
    else if (flag == "--grid") {
      opt.grid.ns = sweep::parse_grid_axis(need_value(i));
    } else if (flag == "--protocols") {
      opt.grid.protocols = sweep::parse_protocol_list(need_value(i));
    } else if (flag == "--trials") opt.grid.trials = std::atoi(need_value(i));
    else if (flag == "--seed") {
      opt.grid.master_seed =
          static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (flag == "--rounds") {
      opt.grid.dynamics.max_rounds = std::atoll(need_value(i));
    } else if (flag == "--check-interval") {
      opt.grid.dynamics.check_interval = std::atoll(need_value(i));
    } else if (flag == "--stop") {
      const std::string v = need_value(i);
      if (v == "stable") {
        opt.grid.dynamics.stop = sweep::StopRule::kImitationStable;
      } else if (v == "nash") {
        opt.grid.dynamics.stop = sweep::StopRule::kNash;
      } else if (v.rfind("deltaeps:", 0) == 0) {
        opt.grid.dynamics.stop = sweep::StopRule::kDeltaEps;
        if (std::sscanf(v.c_str(), "deltaeps:%lf,%lf",
                        &opt.grid.dynamics.delta,
                        &opt.grid.dynamics.eps) != 2) {
          usage("expected --stop deltaeps:D,E");
        }
      } else {
        usage("unknown stop condition");
      }
    } else if (flag == "--engine") {
      const std::string v = need_value(i);
      if (v == "aggregate") opt.grid.dynamics.mode = EngineMode::kAggregate;
      else if (v == "perplayer") {
        opt.grid.dynamics.mode = EngineMode::kPerPlayer;
      } else usage("unknown engine");
    } else if (flag == "--param") {
      const std::string kv = need_value(i);
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) usage("expected --param K=V");
      opt.grid.scenario.params[kv.substr(0, eq)] =
          std::atof(kv.c_str() + eq + 1);
    } else if (flag == "--lambda") lambda = std::atof(need_value(i));
    else if (flag == "--manifest") opt.serve.manifest_path = need_value(i);
    else if (flag == "--final-manifest") {
      opt.serve.final_manifest_path = need_value(i);
    } else if (flag == "--host") opt.serve.host = need_value(i);
    else if (flag == "--port") {
      opt.serve.port = static_cast<std::uint16_t>(std::atoi(need_value(i)));
    } else if (flag == "--port-file") opt.serve.port_file = need_value(i);
    else if (flag == "--lease-ttl") {
      opt.serve.lease_ttl_seconds = std::atof(need_value(i));
    } else if (flag == "--tick") {
      opt.serve.tick_seconds = std::atof(need_value(i));
    } else if (flag == "--wait-backoff") {
      opt.serve.wait_backoff_ms = std::atoll(need_value(i));
    } else if (flag == "--max-requeues") {
      opt.serve.max_requeues = std::atoi(need_value(i));
    } else if (flag == "--max-seconds") {
      opt.serve.max_seconds = std::atof(need_value(i));
    } else if (flag == "--metrics-http") {
      opt.serve.metrics_http = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opt.serve.metrics_port =
            static_cast<std::uint16_t>(std::atoi(argv[++i]));
      }
    } else if (flag == "--metrics-port-file") {
      opt.serve.metrics_port_file = need_value(i);
    } else if (flag == "--metrics-prom") {
      opt.serve.metrics_prom_path = need_value(i);
    } else if (flag == "--inject-faults") {
      opt.fault_spec = need_value(i);
    } else if (flag == "--verbose") opt.serve.verbose = true;
    else usage(("unknown flag: " + flag).c_str());
  }
  if (opt.grid.scenario.name.empty()) usage("--scenario is required");
  if (opt.serve.manifest_path.empty()) usage("--manifest is required");
  if (opt.grid.trials < 1) usage("--trials must be >= 1");
  if (opt.serve.lease_ttl_seconds <= 0.0) {
    usage("--lease-ttl must be > 0");
  }
  if (opt.serve.tick_seconds <= 0.0) usage("--tick must be > 0");
  if (opt.serve.max_requeues < 1) usage("--max-requeues must be >= 1");
  if (opt.serve.max_seconds < 0.0) usage("--max-seconds must be >= 0");
  if (lambda <= 0.0 || lambda > 1.0) usage("lambda out of (0,1]");
  if (!opt.fault_spec.empty()) {
    util::configure_faults(opt.fault_spec);
    if (!util::kFaultsCompiled) {
      std::fprintf(stderr,
                   "cid_serve: note: built with CID_FAULTS=OFF — "
                   "--inject-faults accepted but inert\n");
    }
  }
  for (auto& protocol : opt.grid.protocols) protocol.lambda = lambda;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  try {
    opt.serve.on_listening = [&](std::uint16_t lease_port,
                                 std::uint16_t metrics_port) {
      std::printf("cid_serve: leases on %s:%u", opt.serve.host.c_str(),
                  lease_port);
      if (metrics_port != 0) {
        std::printf(", fleet /metrics on %s:%u", opt.serve.host.c_str(),
                    metrics_port);
      }
      std::printf("\n");
      std::fflush(stdout);
    };
    const serve::CoordinatorReport report =
        serve::serve_grid(opt.grid, opt.serve);

    std::printf(
        "served %zu/%zu trials (%zu resumed, %zu failed) to %zu worker(s)\n",
        report.trials_completed, report.trials_total, report.trials_resumed,
        report.trials_failed, report.workers_seen);
    std::printf(
        "leases: %zu granted, %zu expired, %zu reclaimed from dropped "
        "connections, %zu worker requeues, %zu stale completions "
        "rejected\n",
        report.leases_granted, report.leases_expired,
        report.leases_disconnected, report.requeues,
        report.completions_rejected);
    if (util::faults_armed()) {
      std::printf("faults injected: %lld\n",
                  static_cast<long long>(util::faults_injected()));
    }
    if (report.timed_out) {
      std::printf("cid_serve: --max-seconds elapsed before the grid "
                  "drained; exiting 3\n");
      return 3;
    }
    if (!report.complete) {
      std::printf("cid_serve: grid INCOMPLETE (%zu trial(s) permanently "
                  "failed); exiting 3\n",
                  report.trials_failed);
      return 3;
    }
    std::printf("grid drained; canonical manifest at %s\n",
                opt.serve.final_manifest_path.empty()
                    ? opt.serve.manifest_path.c_str()
                    : opt.serve.final_manifest_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cid_serve: %s\n", e.what());
    return 1;
  }
}
