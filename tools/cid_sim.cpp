// cid_sim — command-line driver for the dynamics in this library.
//
//   cid_sim --game FILE [--protocol imitation|exploration|combined]
//           [--lambda L] [--no-nu] [--no-damping] [--virtual V]
//           [--rounds N] [--seed S] [--engine aggregate|perplayer]
//           [--start uniform|even|all:K] [--stop stable|nash|deltaeps:D,E]
//           [--trace-every K] [--csv PATH]
//           [--checkpoint PATH [--checkpoint-every K] [--checkpoint-keep K]]
//           [--resume PATH] [--event-log PATH [--no-log-compress]
//           [--rotate-bytes N]] [--save-state PATH]
//           [--metrics PATH [--metrics-every K]]
//           [--inject-faults SPEC]
//
// Loads a game in the cid-game v1 text format (see src/game/io.hpp;
// cid_gen writes such files), runs the chosen protocol, prints a trace
// table and a final report, and optionally dumps the trace as CSV.
//
// Persistence (src/persist/): --checkpoint writes a binary snapshot of the
// full simulation tuple — game, state, round counter, protocol config, and
// exact RNG stream state — atomically to PATH at round 0, every
// --checkpoint-every rounds, and at the end. --resume PATH continues such
// a snapshot bit-exactly (no --game/protocol flags needed; --rounds stays
// the TOTAL round cap). --event-log appends one checksummed record of each
// round's migrations, so cid_replay can reconstruct any state without
// re-running the dynamics.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "cid/cid.hpp"
#include "util/fault.hpp"

namespace {

using namespace cid;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: cid_sim --game FILE [options]\n"
      "       cid_sim --resume SNAPSHOT [options]\n"
      "  --protocol P    imitation (default) | exploration | combined\n"
      "  --lambda L      migration scale, default 0.25\n"
      "  --no-nu         drop the nu gain cutoff (Theorem 9 regime)\n"
      "  --no-damping    drop the 1/d damping (overshoot ablation)\n"
      "  --virtual V     virtual agents per strategy (section 6)\n"
      "  --rounds N      TOTAL round cap, default 100000\n"
      "  --seed S        RNG seed, default 1\n"
      "  --engine E      aggregate (default) | perplayer\n"
      "  --row-threads K fan per-origin probability-row fills across K\n"
      "                  threads inside each round (default 1; output is\n"
      "                  bitwise identical for every K — worth it only for\n"
      "                  large games)\n"
      "  --start S       uniform (default) | even | all:K | state:PATH\n"
      "                  (state:PATH loads a cid-state v1 file, e.g. a\n"
      "                  previous run's --save-state output)\n"
      "  --stop C        stable (default) | nash | deltaeps:D,E\n"
      "  --trace-every K sample the trace every K rounds, default 10\n"
      "  --csv PATH      also write the trace as CSV\n"
      "  --checkpoint PATH    write binary snapshots to PATH (atomic)\n"
      "  --checkpoint-every K snapshot cadence in rounds (default: only\n"
      "                       round 0 and the final state)\n"
      "  --checkpoint-keep K  keep the newest K snapshots as PATH.r<round>\n"
      "                       instead of overwriting one file (snapshot GC)\n"
      "  --resume PATH   continue bit-exactly from a snapshot (game,\n"
      "                  protocol, engine, stop come from the snapshot;\n"
      "                  PATH may be a --checkpoint-keep prefix — the\n"
      "                  newest PATH.r<round> wins)\n"
      "  --event-log PATH     append per-round migration records\n"
      "                       (delta-encoded + block-compressed v2)\n"
      "  --no-log-compress    write the uncompressed v1 event log format\n"
      "  --rotate-bytes N     rotate the event log to PATH.<seq> segments\n"
      "                       once the active file exceeds N bytes\n"
      "  --save-state PATH    write the final state (cid-state v1 text)\n"
      "  --metrics PATH       meter the engine (phase timers, row/prune\n"
      "                       counters, persist io) and append JSONL\n"
      "                       snapshots to PATH; also prints the counter\n"
      "                       table. Zero RNG impact: the run's outputs\n"
      "                       are bitwise identical with or without it\n"
      "  --metrics-every K    also snapshot every K rounds (default 0 =\n"
      "                       final snapshot only; requires --metrics)\n"
      "  --telemetry PATH     record per-round science observables (phi,\n"
      "                       latencies, makespan, movers, support,\n"
      "                       imitation gap) and write them as JSONL (CSV\n"
      "                       when PATH ends in .csv). Zero RNG impact;\n"
      "                       cid_replay telemetry regenerates the byte-\n"
      "                       identical file from a snapshot + event log\n"
      "  --telemetry-every K  telemetry sampling cadence in rounds\n"
      "                       (default 1; requires --telemetry)\n"
      "  --trace PATH         capture Chrome trace-event JSON spans (engine\n"
      "                       phases sampled, persist writes) to PATH —\n"
      "                       open in chrome://tracing or Perfetto\n"
      "  --trace-sample K     engine-phase span sampling interval in\n"
      "                       rounds (default 64; requires --trace)\n"
      "  --inject-faults SPEC arm the deterministic fault-injection layer\n"
      "                       (tests/CI): \"seed=S;SITE:KIND[:hit=N]\n"
      "                       [:every=N][:p=P][:count=K]\", kinds\n"
      "                       err|short|enospc|crash at persist sites like\n"
      "                       eventlog.block, snapshot.write (accepted but\n"
      "                       inert when built -DCID_FAULTS=OFF)\n");
  std::exit(error == nullptr ? 0 : 2);
}

struct Options {
  std::string game_path;
  std::string protocol = "imitation";
  double lambda = 0.25;
  bool no_nu = false;
  bool no_damping = false;
  std::int64_t virtual_agents = 0;
  std::int64_t rounds = 100000;
  std::uint64_t seed = 1;
  EngineMode engine = EngineMode::kAggregate;
  int row_threads = 1;
  std::string start = "uniform";
  std::string stop = "stable";
  std::int64_t trace_every = 10;
  std::string csv_path;
  std::string checkpoint_path;
  std::int64_t checkpoint_every = 0;
  std::int64_t checkpoint_keep = 0;
  std::string resume_path;
  std::string event_log_path;
  bool log_compress = true;
  std::uint64_t rotate_bytes = 0;
  std::string save_state_path;
  std::string metrics_path;
  std::int64_t metrics_every = 0;
  std::string telemetry_path;
  std::int64_t telemetry_every = 0;  // 0 = unset (1 when --telemetry given)
  std::string trace_path;
  std::int64_t trace_sample = 0;     // 0 = unset (library default)
  std::string fault_spec;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for flag");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(nullptr);
    else if (flag == "--game") opt.game_path = need_value(i);
    else if (flag == "--protocol") opt.protocol = need_value(i);
    else if (flag == "--lambda") opt.lambda = std::atof(need_value(i));
    else if (flag == "--no-nu") opt.no_nu = true;
    else if (flag == "--no-damping") opt.no_damping = true;
    else if (flag == "--virtual") opt.virtual_agents = std::atoll(need_value(i));
    else if (flag == "--rounds") opt.rounds = std::atoll(need_value(i));
    else if (flag == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (flag == "--engine") {
      const std::string v = need_value(i);
      if (v == "aggregate") opt.engine = EngineMode::kAggregate;
      else if (v == "perplayer") opt.engine = EngineMode::kPerPlayer;
      else usage("unknown engine");
    } else if (flag == "--row-threads") {
      opt.row_threads = std::atoi(need_value(i));
    } else if (flag == "--start") opt.start = need_value(i);
    else if (flag == "--stop") opt.stop = need_value(i);
    else if (flag == "--trace-every") {
      opt.trace_every = std::atoll(need_value(i));
    } else if (flag == "--csv") opt.csv_path = need_value(i);
    else if (flag == "--checkpoint") opt.checkpoint_path = need_value(i);
    else if (flag == "--checkpoint-every") {
      opt.checkpoint_every = std::atoll(need_value(i));
    } else if (flag == "--checkpoint-keep") {
      opt.checkpoint_keep = std::atoll(need_value(i));
    } else if (flag == "--resume") opt.resume_path = need_value(i);
    else if (flag == "--event-log") opt.event_log_path = need_value(i);
    else if (flag == "--no-log-compress") opt.log_compress = false;
    else if (flag == "--rotate-bytes") {
      opt.rotate_bytes = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (flag == "--save-state") opt.save_state_path = need_value(i);
    else if (flag == "--metrics") opt.metrics_path = need_value(i);
    else if (flag == "--metrics-every") {
      opt.metrics_every = std::atoll(need_value(i));
    } else if (flag == "--telemetry") opt.telemetry_path = need_value(i);
    else if (flag == "--telemetry-every") {
      opt.telemetry_every = std::atoll(need_value(i));
    } else if (flag == "--trace") opt.trace_path = need_value(i);
    else if (flag == "--trace-sample") {
      opt.trace_sample = std::atoll(need_value(i));
    } else if (flag == "--inject-faults") {
      opt.fault_spec = need_value(i);
    } else usage(("unknown flag: " + flag).c_str());
  }
  if (opt.game_path.empty() == opt.resume_path.empty()) {
    usage("exactly one of --game and --resume is required");
  }
  if (opt.lambda <= 0.0 || opt.lambda > 1.0) usage("lambda out of (0,1]");
  if (opt.row_threads < 1) usage("--row-threads must be >= 1");
  if (opt.trace_every < 1) usage("--trace-every must be >= 1");
  if (opt.checkpoint_every < 0) usage("--checkpoint-every must be >= 0");
  if (opt.checkpoint_keep < 0) usage("--checkpoint-keep must be >= 0");
  if (opt.checkpoint_every > 0 && opt.checkpoint_path.empty()) {
    usage("--checkpoint-every requires --checkpoint PATH");
  }
  if (opt.checkpoint_keep > 0 && opt.checkpoint_path.empty()) {
    usage("--checkpoint-keep requires --checkpoint PATH");
  }
  if (opt.rotate_bytes > 0 && opt.event_log_path.empty()) {
    usage("--rotate-bytes requires --event-log PATH");
  }
  if (opt.metrics_every < 0) usage("--metrics-every must be >= 0");
  if (opt.metrics_every > 0 && opt.metrics_path.empty()) {
    usage("--metrics-every requires --metrics PATH");
  }
  if (opt.telemetry_every < 0) usage("--telemetry-every must be >= 1");
  if (opt.telemetry_every > 0 && opt.telemetry_path.empty()) {
    usage("--telemetry-every requires --telemetry PATH");
  }
  if (opt.telemetry_every == 0) opt.telemetry_every = 1;
  if (opt.trace_sample < 0) usage("--trace-sample must be >= 1");
  if (opt.trace_sample > 0 && opt.trace_path.empty()) {
    usage("--trace-sample requires --trace PATH");
  }
  // Parse (and, when compiled in, arm) the fault schedule so a bad spec
  // exits 2 like any other flag-value error; a -DCID_FAULTS=OFF build
  // still accepts and validates the flag, it just never fires.
  if (!opt.fault_spec.empty()) {
    util::configure_faults(opt.fault_spec);
    if (!util::kFaultsCompiled) {
      std::fprintf(stderr,
                   "cid_sim: note: built with CID_FAULTS=OFF — "
                   "--inject-faults accepted but inert\n");
    }
  }
  return opt;
}

std::unique_ptr<Protocol> build_protocol(const Options& opt) {
  ImitationParams ip;
  ip.lambda = opt.lambda;
  ip.nu_cutoff = !opt.no_nu;
  ip.damping = !opt.no_damping;
  ip.virtual_agents = opt.virtual_agents;
  ExplorationParams ep;
  ep.lambda = opt.lambda;
  if (opt.protocol == "imitation") {
    return std::make_unique<ImitationProtocol>(ip);
  }
  if (opt.protocol == "exploration") {
    return std::make_unique<ExplorationProtocol>(ep);
  }
  if (opt.protocol == "combined") {
    return std::make_unique<CombinedProtocol>(ip, ep, 0.5);
  }
  usage("unknown protocol");
}

State build_start(const Options& opt, const CongestionGame& game, Rng& rng) {
  if (opt.start == "uniform") return State::uniform_random(game, rng);
  if (opt.start == "even") return State::spread_evenly(game);
  if (opt.start.rfind("all:", 0) == 0) {
    const auto k = static_cast<StrategyId>(std::atoi(opt.start.c_str() + 4));
    if (k < 0 || k >= game.num_strategies()) usage("all:K out of range");
    return State::all_on(game, k);
  }
  if (opt.start.rfind("state:", 0) == 0) {
    // Feed a finished run's --save-state output back in as the start.
    return load_state(game, opt.start.substr(6));
  }
  usage("unknown start");
}

persist::SimConfig sim_config(const Options& opt) {
  persist::SimConfig config;
  config.protocol = opt.protocol;
  config.lambda = opt.lambda;
  config.p_explore = 0.5;
  config.nu_cutoff = !opt.no_nu;
  config.damping = !opt.no_damping;
  config.virtual_agents = opt.virtual_agents;
  config.engine = static_cast<std::uint8_t>(opt.engine);
  config.stop = opt.stop;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    // Bad flag *values* (e.g. a malformed --inject-faults spec) land
    // here; bad flag shapes exit through usage() directly.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  try {
    // Assemble the simulation tuple, fresh or from a snapshot.
    std::unique_ptr<CongestionGame> game;
    std::optional<State> x;
    Rng rng(opt.seed);
    std::unique_ptr<Protocol> protocol;
    persist::SimConfig config;
    std::int64_t start_round = 0;
    EngineMode engine = opt.engine;

    if (!opt.resume_path.empty()) {
      // A --checkpoint-keep prefix resolves to its newest PATH.r<round>.
      const std::string resume_from =
          persist::find_latest_checkpoint(opt.resume_path);
      persist::ResumedRun resumed = persist::resume_run(resume_from);
      game = std::move(resumed.game);
      x.emplace(std::move(resumed.state));
      rng = resumed.rng;
      protocol = std::move(resumed.protocol);
      config = resumed.config;
      start_round = resumed.round;
      engine = resumed.mode;
      std::printf("resumed %s at round %lld: %s\n", resume_from.c_str(),
                  static_cast<long long>(start_round),
                  game->describe().c_str());
    } else {
      game = std::make_unique<CongestionGame>(load_game(opt.game_path));
      std::printf("loaded %s\n", game->describe().c_str());
      x.emplace(build_start(opt, *game, rng));
      protocol = build_protocol(opt);
      config = sim_config(opt);
    }
    if (opt.rounds <= start_round && opt.rounds != 0) {
      usage("--rounds (total cap) must exceed the snapshot's round");
    }
    std::printf("protocol: %s, engine: %s, rounds cap: %lld\n\n",
                protocol->name().c_str(),
                engine == EngineMode::kAggregate ? "aggregate" : "perplayer",
                static_cast<long long>(opt.rounds));

    // Span tracing is armed before any observer or persist writer runs so
    // the timeline covers the whole run (pure observation: zero RNG, no
    // output byte changes — the PR 6 contract).
    if (!opt.trace_path.empty()) {
      if (opt.trace_sample > 0) {
        obs::set_trace_engine_sample_interval(opt.trace_sample);
      }
      obs::start_tracing();
    }

    // Observers: trace + optional event log + optional checkpoint cadence.
    TraceRecorder trace(*game, *x, opt.trace_every);
    RoundObserver observer = trace.observer();

    // Convergence telemetry rides the same observer chain; the recorder
    // buffers records and the file is written after the run (finish()
    // needs the converged verdict to decide on the final record).
    std::optional<obs::TelemetryRecorder> telemetry;
    if (!opt.telemetry_path.empty()) {
      telemetry.emplace(opt.telemetry_every);
      observer = persist::chain_observers(std::move(observer),
                                          telemetry->observer());
    }

    std::optional<persist::EventLogWriter> event_log;
    persist::EventLogOptions log_options;
    log_options.compress = opt.log_compress;
    log_options.rotate_bytes = opt.rotate_bytes;
    if (!opt.event_log_path.empty()) {
      if (!opt.resume_path.empty() &&
          std::filesystem::exists(opt.event_log_path)) {
        event_log.emplace(persist::EventLogWriter::open_for_append(
            opt.event_log_path, start_round, log_options));
      } else {
        event_log.emplace(
            persist::EventLogWriter::create(opt.event_log_path, log_options));
      }
      observer = persist::chain_observers(std::move(observer),
                                          event_log->observer());
    }

    std::optional<persist::Checkpointer> checkpointer;
    if (!opt.checkpoint_path.empty()) {
      checkpointer.emplace(
          *game, rng,
          persist::CheckpointConfig{opt.checkpoint_path, opt.checkpoint_every,
                                    opt.checkpoint_keep},
          config);
      // Round-0 (or resume-round) snapshot: captured before run_dynamics
      // consumes any draws, so snapshot + event log replays the whole run.
      checkpointer->write_now(*x, start_round);
      observer = persist::chain_observers(std::move(observer),
                                          checkpointer->observer());
    }

    // Engine metering (src/obs/): the counters accumulate into a local
    // struct the run options point at; snapshots are rebuilt from it on
    // demand. Pure observation — zero RNG, outputs bitwise identical.
    obs::EngineMetrics engine_metrics;
    obs::MetricsRegistry metrics_registry;
    std::unique_ptr<obs::JsonlSink> metrics_sink;
    const obs::PersistIoTotals io_before = obs::persist_io_totals();
    auto write_metrics_snapshot = [&]() {
      metrics_registry.reset_values();
      metrics_registry.merge_engine("", engine_metrics);
      const obs::PersistIoTotals io = obs::persist_io_totals();
      metrics_registry.add_named("persist.bytes_written",
                                 io.bytes_written - io_before.bytes_written);
      metrics_registry.add_named("persist.writes", io.writes - io_before.writes);
      metrics_registry.add_named("persist.fsyncs", io.fsyncs - io_before.fsyncs);
      metrics_registry.add_named("persist.fflushes",
                                 io.fflushes - io_before.fflushes);
      metrics_sink->write(metrics_registry.snapshot());
    };
    if (!opt.metrics_path.empty()) {
      metrics_sink = std::make_unique<obs::JsonlSink>(opt.metrics_path);
      if (opt.metrics_every > 0) {
        observer = persist::chain_observers(
            std::move(observer),
            [&](const CongestionGame&, const State&,
                std::span<const Migration>, std::int64_t round, bool final) {
              // The final snapshot is written after the run instead, once
              // the event log has flushed its tail.
              if (!final && round % opt.metrics_every == 0) {
                write_metrics_snapshot();
              }
            });
      }
    }

    RunOptions run_options;
    run_options.max_rounds = opt.rounds;
    run_options.mode = engine;
    run_options.start_round = start_round;
    run_options.row_threads = opt.row_threads;
    if (metrics_sink != nullptr) run_options.metrics = &engine_metrics;
    const WallTimer run_timer;
    const RunResult result =
        run_dynamics(*game, *x, *protocol, rng, run_options,
                     persist::cached_stop_from_spec(config.stop), observer);
    const double run_seconds = run_timer.seconds();
    if (event_log.has_value()) event_log->close();

    trace.to_table().print("trace (every " +
                           std::to_string(opt.trace_every) + " rounds)");
    std::printf(
        "\nstopped after %lld rounds (converged: %s, migrations this "
        "invocation %lld)\n",
        static_cast<long long>(result.rounds),
        result.converged ? "yes" : "no",
        static_cast<long long>(result.total_movers));
    // Kernel throughput for THIS invocation (a resumed run only executed
    // rounds [start_round, result.rounds)).
    const std::int64_t ran_rounds = result.rounds - start_round;
    if (ran_rounds > 0 && run_seconds > 0.0) {
      std::printf(
          "throughput: %.0f rounds/s; %lld latency evals (%.2f per round)\n",
          static_cast<double>(ran_rounds) / run_seconds,
          static_cast<long long>(result.latency_evals),
          static_cast<double>(result.latency_evals) /
              static_cast<double>(ran_rounds));
    }
    const auto report = check_delta_eps_nu(*game, *x, 0.1, 0.1, game->nu());
    std::printf(
        "final: L_av=%.4f  L+_av=%.4f  makespan=%.4f  nash_gap=%.4f\n"
        "imitation-stable=%s  nash=%s  (0.1,0.1,nu)-eq=%s\n",
        report.average_latency, report.plus_average_latency,
        makespan(*game, *x), nash_gap(*game, *x),
        is_imitation_stable(*game, *x, game->nu()) ? "yes" : "no",
        is_nash(*game, *x) ? "yes" : "no",
        report.at_equilibrium ? "yes" : "no");
    if (!opt.csv_path.empty()) {
      trace.to_table().write_csv(opt.csv_path);
      std::printf("trace written to %s\n", opt.csv_path.c_str());
    }
    if (!opt.save_state_path.empty()) {
      save_state(*x, opt.save_state_path);
      std::printf("final state written to %s\n",
                  opt.save_state_path.c_str());
    }
    if (!opt.checkpoint_path.empty()) {
      if (opt.checkpoint_keep > 0) {
        std::printf("checkpoints written to %s.r<round> (newest: round "
                    "%lld, keeping last %lld)\n",
                    opt.checkpoint_path.c_str(),
                    static_cast<long long>(result.rounds),
                    static_cast<long long>(opt.checkpoint_keep));
      } else {
        std::printf("checkpoint written to %s (round %lld)\n",
                    opt.checkpoint_path.c_str(),
                    static_cast<long long>(result.rounds));
      }
    }
    if (event_log.has_value()) {
      // Compression observability: on-disk bytes vs the fixed-width v1
      // encoding of the same rounds (writer-maintained counters — no
      // re-read of a possibly multi-GB chain at shutdown).
      const std::uint64_t disk = event_log->disk_bytes();
      const std::uint64_t v1 = event_log->v1_equivalent_bytes();
      std::printf(
          "event log %s: %llu bytes on disk, %llu uncompressed-equivalent "
          "(%.1fx)\n",
          opt.event_log_path.c_str(), static_cast<unsigned long long>(disk),
          static_cast<unsigned long long>(v1),
          disk == 0 ? 0.0
                    : static_cast<double>(v1) / static_cast<double>(disk));
    }
    if (telemetry.has_value()) {
      telemetry->finish(result.converged);
      const std::uint64_t bytes =
          obs::write_telemetry_file(opt.telemetry_path, telemetry->records());
      std::printf("telemetry written to %s (%zu records, %llu bytes)\n",
                  opt.telemetry_path.c_str(), telemetry->records().size(),
                  static_cast<unsigned long long>(bytes));
    }
    if (metrics_sink != nullptr) {
      write_metrics_snapshot();
      obs::TableSink("engine metrics").write(metrics_registry.snapshot());
      metrics_sink->close();
      std::printf("metrics written to %s (%llu bytes)\n",
                  metrics_sink->path().c_str(),
                  static_cast<unsigned long long>(
                      metrics_sink->bytes_written()));
    }
    if (!opt.trace_path.empty()) {
      const std::size_t events = obs::stop_tracing_to(opt.trace_path);
      std::printf("trace written to %s (%zu events)\n",
                  opt.trace_path.c_str(), events);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cid_sim: %s\n", e.what());
    return 1;
  }
  return 0;
}
