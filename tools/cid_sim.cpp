// cid_sim — command-line driver for the dynamics in this library.
//
//   cid_sim --game FILE [--protocol imitation|exploration|combined]
//           [--lambda L] [--no-nu] [--no-damping] [--virtual V]
//           [--rounds N] [--seed S] [--engine aggregate|perplayer]
//           [--start uniform|even|all:K] [--stop stable|nash|deltaeps:D,E]
//           [--trace-every K] [--csv PATH]
//
// Loads a game in the cid-game v1 text format (see src/game/io.hpp;
// cid_gen writes such files), runs the chosen protocol, prints a trace
// table and a final report, and optionally dumps the trace as CSV.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cid/cid.hpp"

namespace {

using namespace cid;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: cid_sim --game FILE [options]\n"
      "  --protocol P    imitation (default) | exploration | combined\n"
      "  --lambda L      migration scale, default 0.25\n"
      "  --no-nu         drop the nu gain cutoff (Theorem 9 regime)\n"
      "  --no-damping    drop the 1/d damping (overshoot ablation)\n"
      "  --virtual V     virtual agents per strategy (section 6)\n"
      "  --rounds N      round cap, default 100000\n"
      "  --seed S        RNG seed, default 1\n"
      "  --engine E      aggregate (default) | perplayer\n"
      "  --start S       uniform (default) | even | all:K\n"
      "  --stop C        stable (default) | nash | deltaeps:D,E\n"
      "  --trace-every K sample the trace every K rounds, default 10\n"
      "  --csv PATH      also write the trace as CSV\n");
  std::exit(error == nullptr ? 0 : 2);
}

struct Options {
  std::string game_path;
  std::string protocol = "imitation";
  double lambda = 0.25;
  bool no_nu = false;
  bool no_damping = false;
  std::int64_t virtual_agents = 0;
  std::int64_t rounds = 100000;
  std::uint64_t seed = 1;
  EngineMode engine = EngineMode::kAggregate;
  std::string start = "uniform";
  std::string stop = "stable";
  std::int64_t trace_every = 10;
  std::string csv_path;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for flag");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(nullptr);
    else if (flag == "--game") opt.game_path = need_value(i);
    else if (flag == "--protocol") opt.protocol = need_value(i);
    else if (flag == "--lambda") opt.lambda = std::atof(need_value(i));
    else if (flag == "--no-nu") opt.no_nu = true;
    else if (flag == "--no-damping") opt.no_damping = true;
    else if (flag == "--virtual") opt.virtual_agents = std::atoll(need_value(i));
    else if (flag == "--rounds") opt.rounds = std::atoll(need_value(i));
    else if (flag == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (flag == "--engine") {
      const std::string v = need_value(i);
      if (v == "aggregate") opt.engine = EngineMode::kAggregate;
      else if (v == "perplayer") opt.engine = EngineMode::kPerPlayer;
      else usage("unknown engine");
    } else if (flag == "--start") opt.start = need_value(i);
    else if (flag == "--stop") opt.stop = need_value(i);
    else if (flag == "--trace-every") {
      opt.trace_every = std::atoll(need_value(i));
    } else if (flag == "--csv") opt.csv_path = need_value(i);
    else usage(("unknown flag: " + flag).c_str());
  }
  if (opt.game_path.empty()) usage("--game is required");
  if (opt.lambda <= 0.0 || opt.lambda > 1.0) usage("lambda out of (0,1]");
  if (opt.trace_every < 1) usage("--trace-every must be >= 1");
  return opt;
}

std::unique_ptr<Protocol> build_protocol(const Options& opt) {
  ImitationParams ip;
  ip.lambda = opt.lambda;
  ip.nu_cutoff = !opt.no_nu;
  ip.damping = !opt.no_damping;
  ip.virtual_agents = opt.virtual_agents;
  ExplorationParams ep;
  ep.lambda = opt.lambda;
  if (opt.protocol == "imitation") {
    return std::make_unique<ImitationProtocol>(ip);
  }
  if (opt.protocol == "exploration") {
    return std::make_unique<ExplorationProtocol>(ep);
  }
  if (opt.protocol == "combined") {
    return std::make_unique<CombinedProtocol>(ip, ep, 0.5);
  }
  usage("unknown protocol");
}

State build_start(const Options& opt, const CongestionGame& game, Rng& rng) {
  if (opt.start == "uniform") return State::uniform_random(game, rng);
  if (opt.start == "even") return State::spread_evenly(game);
  if (opt.start.rfind("all:", 0) == 0) {
    const auto k = static_cast<StrategyId>(std::atoi(opt.start.c_str() + 4));
    if (k < 0 || k >= game.num_strategies()) usage("all:K out of range");
    return State::all_on(game, k);
  }
  usage("unknown start");
}

StopPredicate build_stop(const Options& opt) {
  if (opt.stop == "stable") {
    return [](const CongestionGame& g, const State& s, std::int64_t) {
      return is_imitation_stable(g, s, g.nu());
    };
  }
  if (opt.stop == "nash") {
    return [](const CongestionGame& g, const State& s, std::int64_t) {
      return is_nash(g, s);
    };
  }
  if (opt.stop.rfind("deltaeps:", 0) == 0) {
    double delta = 0.1, eps = 0.1;
    if (std::sscanf(opt.stop.c_str(), "deltaeps:%lf,%lf", &delta, &eps) !=
        2) {
      usage("expected --stop deltaeps:D,E");
    }
    return [delta, eps](const CongestionGame& g, const State& s,
                        std::int64_t) {
      return is_delta_eps_equilibrium(g, s, delta, eps);
    };
  }
  usage("unknown stop condition");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    const CongestionGame game = load_game(opt.game_path);
    std::printf("loaded %s\n", game.describe().c_str());
    Rng rng(opt.seed);
    State x = build_start(opt, game, rng);
    const auto protocol = build_protocol(opt);
    std::printf("protocol: %s, engine: %s, rounds cap: %lld\n\n",
                protocol->name().c_str(),
                opt.engine == EngineMode::kAggregate ? "aggregate"
                                                     : "perplayer",
                static_cast<long long>(opt.rounds));

    TraceRecorder trace(game, x, opt.trace_every);
    RunOptions run_options;
    run_options.max_rounds = opt.rounds;
    run_options.mode = opt.engine;
    const RunResult result = run_dynamics(game, x, *protocol, rng,
                                          run_options, build_stop(opt),
                                          trace.observer());

    trace.to_table().print("trace (every " +
                           std::to_string(opt.trace_every) + " rounds)");
    std::printf(
        "\nstopped after %lld rounds (converged: %s, total migrations "
        "%lld)\n",
        static_cast<long long>(result.rounds),
        result.converged ? "yes" : "no",
        static_cast<long long>(result.total_movers));
    const auto report = check_delta_eps_nu(game, x, 0.1, 0.1, game.nu());
    std::printf(
        "final: L_av=%.4f  L+_av=%.4f  makespan=%.4f  nash_gap=%.4f\n"
        "imitation-stable=%s  nash=%s  (0.1,0.1,nu)-eq=%s\n",
        report.average_latency, report.plus_average_latency,
        makespan(game, x), nash_gap(game, x),
        is_imitation_stable(game, x, game.nu()) ? "yes" : "no",
        is_nash(game, x) ? "yes" : "no",
        report.at_equilibrium ? "yes" : "no");
    if (!opt.csv_path.empty()) {
      trace.to_table().write_csv(opt.csv_path);
      std::printf("trace written to %s\n", opt.csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cid_sim: %s\n", e.what());
    return 1;
  }
  return 0;
}
