// cid_merge — merge sweep manifest shards/partials into one canonical file.
//
//   cid_merge --out merged.mani shard0.mani shard1.mani [shard2.mani ...]
//
// Inputs must all belong to the same sweep grid (checked by the grid
// fingerprint each manifest header carries — mixing grids is a hard
// error). Identical duplicate records collapse silently; conflicting
// duplicates abort unless --keep-first resolves them (earlier argument
// wins). Up to --max-corrupt unreadable inputs are skipped loudly;
// corruption INSIDE a readable input (CRC-bad record slots, unreadable
// rotated segments) is skipped record-by-record by the tolerant loader.
//
// The output is canonical: a single v2 segment with records sorted by
// (cell, trial), staged through "<out>.tmp" + rename + directory fsync.
// Merging the same trials under any sharding or input order produces
// byte-identical files — and matches a threads=1 unsharded sweep's
// manifest exactly (tests/test_merge.cpp).
//
// Exit codes: 0 success; 1 merge/write error; 2 usage error; 3 the merge
// succeeded but --expect-complete found trials missing.

#include <cstdio>
#include <string>
#include <vector>

#include "persist/manifest.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --out PATH IN1 [IN2 ...]\n"
      "  --out PATH         merged manifest to write (required)\n"
      "  --max-corrupt N    unreadable inputs to tolerate (default 1)\n"
      "  --keep-first       resolve conflicting duplicate records by\n"
      "                     keeping the earlier input's record\n"
      "  --expect-complete  exit 3 unless every (cell, trial) of the grid\n"
      "                     is present in the merge\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> inputs;
  cid::persist::MergeOptions options;
  bool expect_complete = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = need_value("--out");
    } else if (arg == "--max-corrupt") {
      try {
        const int n = std::stoi(need_value("--max-corrupt"));
        if (n < 0) throw std::invalid_argument("negative");
        options.max_corrupt_inputs = static_cast<std::size_t>(n);
      } catch (const std::exception&) {
        std::fprintf(stderr, "%s: --max-corrupt needs an integer >= 0\n",
                     argv[0]);
        return 2;
      }
    } else if (arg == "--keep-first") {
      options.keep_first_on_conflict = true;
    } else if (arg == "--expect-complete") {
      expect_complete = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (out_path.empty() || inputs.empty()) return usage(argv[0]);

  try {
    const cid::persist::MergeReport report =
        cid::persist::merge_manifests(inputs, options);
    const std::uint64_t bytes =
        cid::persist::write_manifest_canonical(out_path, report);

    const std::size_t total =
        static_cast<std::size_t>(report.cells) * report.trials_per_cell;
    std::printf("merged %zu input(s) -> %s\n", inputs.size(),
                out_path.c_str());
    std::printf(
        "  grid fingerprint %016llx, %u cell(s) x %u trial(s)\n",
        static_cast<unsigned long long>(report.fingerprint), report.cells,
        report.trials_per_cell);
    std::printf("  %zu / %zu trial record(s), %llu bytes written\n",
                report.completed.size(), total,
                static_cast<unsigned long long>(bytes));
    if (report.duplicate_records > 0) {
      std::printf("  %zu identical duplicate(s) collapsed\n",
                  report.duplicate_records);
    }
    if (report.conflicts > 0) {
      std::printf("  %zu conflicting duplicate(s) resolved keep-first\n",
                  report.conflicts);
    }
    if (!report.corrupt_inputs.empty() || report.corrupt_records > 0 ||
        !report.corrupt_segments.empty()) {
      std::printf(
          "  CORRUPTION tolerated: %zu unreadable input(s), %zu corrupt "
          "record slot(s), %zu unreadable segment(s)\n",
          report.corrupt_inputs.size(), report.corrupt_records,
          report.corrupt_segments.size());
    }
    if (expect_complete && report.completed.size() != total) {
      std::fprintf(stderr,
                   "%s: merge is INCOMPLETE: %zu of %zu trial(s) missing\n",
                   argv[0], total - report.completed.size(), total);
      return 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return 0;
}
