// cid_replay — inspect, diff, and replay persistence artifacts.
//
//   cid_replay inspect FILE
//   cid_replay diff A B
//   cid_replay replay --snapshot S --log L [--to ROUND]
//                     [--save-state PATH] [--expect SNAPSHOT]
//                     [--metrics PATH] [--metrics-prom PATH]
//   cid_replay telemetry --snapshot S --log L --telemetry PATH
//                     [--to ROUND] [--telemetry-every N]
//   cid_replay export SNAPSHOT [--game PATH] [--state PATH]
//
// inspect   sniffs the magic (CIDSNAP snapshot, CIDELOG event log, CIDMANI
//           sweep manifest) and prints a structural summary.
// diff      compares two snapshots (field by field) or two event logs
//           (first diverging round); exit code 1 when they differ.
// replay    reconstructs a state by applying the event log's recorded
//           migrations to the snapshot's state — ZERO RNG draws, pure
//           deterministic replay — and prints the same final quantities as
//           cid_sim; --expect verifies the result against another
//           snapshot; --metrics/--metrics-prom export replay.* counters
//           plus the persist I/O deltas.
// telemetry regenerates the convergence telemetry series offline from a
//           snapshot + event log — byte-identical to what a live run with
//           --telemetry at the same sampling stride captured, with zero
//           RNG draws (every record is a pure function of the replayed
//           pre-round state and the logged moves).
// export    converts a binary snapshot to the cid-game/cid-state v1 text
//           formats for diffing and editing.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "cid/cid.hpp"

namespace {

using namespace cid;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: cid_replay inspect FILE\n"
      "       cid_replay diff A B\n"
      "       cid_replay replay --snapshot S --log L [--to ROUND]\n"
      "                  [--save-state PATH] [--expect SNAPSHOT]\n"
      "                  [--metrics PATH] [--metrics-prom PATH]\n"
      "       cid_replay telemetry --snapshot S --log L --telemetry PATH\n"
      "                  [--to ROUND] [--telemetry-every N]\n"
      "       cid_replay export SNAPSHOT [--game PATH] [--state PATH]\n");
  std::exit(error == nullptr ? 0 : 2);
}

enum class ArtifactKind { kSnapshot, kEventLog, kManifest, kUnknown };

ArtifactKind sniff(const std::string& path) {
  const std::string data = persist::slurp_file(path);
  if (data.rfind("CIDSNAP", 0) == 0) return ArtifactKind::kSnapshot;
  if (data.rfind("CIDELOG", 0) == 0) return ArtifactKind::kEventLog;
  if (data.rfind("CIDMANI", 0) == 0) return ArtifactKind::kManifest;
  return ArtifactKind::kUnknown;
}

void print_snapshot(const persist::Snapshot& snapshot,
                    const std::string& path) {
  std::printf("%s: snapshot (symmetric family)\n", path.c_str());
  std::printf("  round            %lld\n",
              static_cast<long long>(snapshot.round));
  std::printf("  protocol         %s (lambda=%g, p_explore=%g, nu_cutoff=%d, "
              "damping=%d, virtual=%lld)\n",
              snapshot.config.protocol.c_str(), snapshot.config.lambda,
              snapshot.config.p_explore, snapshot.config.nu_cutoff ? 1 : 0,
              snapshot.config.damping ? 1 : 0,
              static_cast<long long>(snapshot.config.virtual_agents));
  std::printf("  engine / stop    %s / %s\n",
              snapshot.config.engine == 1 ? "aggregate" : "perplayer",
              snapshot.config.stop.c_str());
  std::printf("  rng state        %016llx %016llx %016llx %016llx\n",
              static_cast<unsigned long long>(snapshot.rng_state[0]),
              static_cast<unsigned long long>(snapshot.rng_state[1]),
              static_cast<unsigned long long>(snapshot.rng_state[2]),
              static_cast<unsigned long long>(snapshot.rng_state[3]));
  std::printf("  game             %s\n", snapshot.game.describe().c_str());
  const State x = snapshot.state();
  std::printf(
      "  state            support %zu of %d strategies, potential %.6g\n",
      x.support().size(), snapshot.game.num_strategies(),
      snapshot.game.potential(x));
}

void print_asymmetric_snapshot(const persist::AsymmetricSnapshot& snapshot,
                               const std::string& path) {
  std::printf("%s: snapshot (asymmetric family)\n", path.c_str());
  std::printf("  round            %lld (movers so far %lld)\n",
              static_cast<long long>(snapshot.round),
              static_cast<long long>(snapshot.movers));
  std::printf("  rng state        %016llx %016llx %016llx %016llx\n",
              static_cast<unsigned long long>(snapshot.rng_state[0]),
              static_cast<unsigned long long>(snapshot.rng_state[1]),
              static_cast<unsigned long long>(snapshot.rng_state[2]),
              static_cast<unsigned long long>(snapshot.rng_state[3]));
  std::printf("  game             %s\n", snapshot.game.describe().c_str());
  const AsymmetricState x = snapshot.state();
  std::printf("  state            %d classes, potential %.6g\n",
              snapshot.game.num_classes(), snapshot.game.potential(x));
}

void print_threshold_snapshot(const persist::ThresholdSnapshot& snapshot,
                              const std::string& path) {
  std::printf("%s: snapshot (threshold family)\n", path.c_str());
  std::printf("  steps            %lld\n",
              static_cast<long long>(snapshot.round));
  std::printf("  construction     %s over %d-node MaxCut\n",
              snapshot.tripled ? "tripled imitation (Theorem 6)"
                               : "quadratic best-response",
              snapshot.instance.num_nodes());
  std::printf("  players          %zu\n", snapshot.in_bits.size());
}

int inspect(const std::string& path) {
  switch (sniff(path)) {
    case ArtifactKind::kSnapshot:
      switch (persist::peek_snapshot_family(path)) {
        case persist::SnapshotFamily::kSymmetric:
          print_snapshot(persist::load_snapshot(path), path);
          break;
        case persist::SnapshotFamily::kAsymmetric:
          print_asymmetric_snapshot(persist::load_asymmetric_snapshot(path),
                                    path);
          break;
        case persist::SnapshotFamily::kThreshold:
          print_threshold_snapshot(persist::load_threshold_snapshot(path),
                                   path);
          break;
      }
      return 0;
    case ArtifactKind::kEventLog: {
      // The whole rotation chain, not just the active segment — inspect
      // must agree with what replay would consume.
      const persist::EventLog log = persist::read_event_log_series(path);
      const std::size_t segments = persist::chain_segments(path).size();
      std::int64_t movers = 0;
      for (const auto& r : log.rounds) {
        for (const Migration& m : r.moves) movers += m.count;
      }
      const std::string chain_note =
          segments == 0 ? ""
                        : " (+" + std::to_string(segments) +
                              " rotated segments)";
      std::printf("%s: event log v%d%s\n", path.c_str(),
                  static_cast<int>(log.version), chain_note.c_str());
      std::printf("  rounds           %zu%s\n", log.rounds.size(),
                  log.truncated_tail ? " (tail truncated by a killed writer)"
                                     : "");
      if (!log.rounds.empty()) {
        std::printf("  round range      [%lld, %lld]\n",
                    static_cast<long long>(log.rounds.front().round),
                    static_cast<long long>(log.rounds.back().round));
      }
      std::printf("  total migrations %lld\n", static_cast<long long>(movers));
      if (log.corrupt_blocks > 0) {
        std::printf("  CORRUPT blocks   %zu skipped (their rounds are "
                    "missing; replay across the gap will fail)\n",
                    log.corrupt_blocks);
      }
      for (const std::string& segment : log.corrupt_segments) {
        std::printf("  CORRUPT segment  %s skipped whole\n", segment.c_str());
      }
      std::printf(
          "  bytes            %llu on disk, %llu uncompressed-equivalent "
          "(%.1fx)\n",
          static_cast<unsigned long long>(log.file_bytes),
          static_cast<unsigned long long>(log.v1_equivalent_bytes),
          log.file_bytes == 0
              ? 0.0
              : static_cast<double>(log.v1_equivalent_bytes) /
                    static_cast<double>(log.file_bytes));
      return 0;
    }
    case ArtifactKind::kManifest: {
      // Header-only inspection (a full parse needs the grid for the
      // fingerprint check); record count from the fixed record size.
      const std::string data = persist::slurp_file(path);
      if (data.size() < 8) usage("manifest too short");
      const auto version = static_cast<unsigned char>(data[7]);
      std::uint64_t fingerprint = 0;
      std::uint32_t cells = 0, trials = 0;
      std::size_t header_size = 0;
      if (version == 1) {
        header_size = 7 + 1 + 8 + 4 + 4;
        if (data.size() < header_size) usage("manifest too short");
        fingerprint = persist::read_le64(data.data() + 8);
        cells = persist::read_le32(data.data() + 16);
        trials = persist::read_le32(data.data() + 20);
      } else {
        if (data.size() < 12) usage("manifest too short");
        const std::uint32_t sections_len = persist::read_le32(data.data() + 8);
        if (data.size() - 12 < sections_len) usage("manifest header damaged");
        const persist::SectionScan scan(
            std::string_view(data).substr(12, sections_len), path);
        const auto grid = scan.require(1, "grid");
        persist::BinReader in(grid, path);
        fingerprint = in.u64();
        cells = in.u32();
        trials = in.u32();
        header_size = 12 + sections_len;
      }
      constexpr std::size_t kRecordSize = 4 + 4 + 8 + 1 + 8 + 8 + 8 + 4;
      const std::size_t records = (data.size() - header_size) / kRecordSize;
      const double total = static_cast<double>(cells) * trials;
      std::printf("%s: sweep manifest v%d\n", path.c_str(),
                  static_cast<int>(version));
      std::printf("  grid fingerprint %016llx\n",
                  static_cast<unsigned long long>(fingerprint));
      std::printf("  grid size        %u cells x %u trials = %llu\n", cells,
                  trials, static_cast<unsigned long long>(cells) * trials);
      std::printf("  completed        %zu trials in this segment (%.1f%%)\n",
                  records,
                  total == 0.0 ? 0.0
                               : 100.0 * static_cast<double>(records) / total);
      // Full tolerant chain scan (CRC-checked, grid-less): counts the
      // records that actually verify and surfaces any damage.
      const persist::ManifestContents contents =
          persist::load_manifest_raw(path);
      if (contents.completed.size() != records ||
          contents.record_count != records) {
        std::printf("  chain total      %zu distinct trials intact "
                    "(%zu records across the chain)\n",
                    contents.completed.size(), contents.record_count);
      }
      if (contents.truncated_tail) {
        std::printf("  TRUNCATED tail   (killed writer; intact prefix "
                    "kept)\n");
      }
      if (contents.corrupt_records > 0) {
        std::printf("  CORRUPT records  %zu CRC-bad slot(s) skipped\n",
                    contents.corrupt_records);
      }
      for (const std::string& segment : contents.corrupt_segments) {
        std::printf("  CORRUPT segment  %s skipped whole\n",
                    segment.c_str());
      }
      return 0;
    }
    case ArtifactKind::kUnknown:
      usage("unrecognized artifact (expected CIDSNAP, CIDELOG, or CIDMANI)");
  }
  return 2;
}

int diff(const std::string& a_path, const std::string& b_path) {
  const ArtifactKind kind = sniff(a_path);
  if (kind != sniff(b_path)) {
    std::printf("different artifact kinds\n");
    return 1;
  }
  if (kind == ArtifactKind::kSnapshot) {
    const persist::SnapshotFamily family_a =
        persist::peek_snapshot_family(a_path);
    if (family_a != persist::peek_snapshot_family(b_path)) {
      std::printf("different snapshot families\n");
      return 1;
    }
    if (family_a != persist::SnapshotFamily::kSymmetric) {
      // Non-symmetric families: bytewise payload comparison (their
      // sections are already canonical encodings).
      const bool same =
          persist::read_file_checked(a_path, "CIDSNAP", 0xFF).payload ==
          persist::read_file_checked(b_path, "CIDSNAP", 0xFF).payload;
      std::printf(same ? "snapshots identical\n" : "snapshots differ\n");
      return same ? 0 : 1;
    }
    const persist::Snapshot a = persist::load_snapshot(a_path);
    const persist::Snapshot b = persist::load_snapshot(b_path);
    if (persist::snapshot_payload(a) == persist::snapshot_payload(b)) {
      std::printf("snapshots identical\n");
      return 0;
    }
    if (a.round != b.round) {
      std::printf("round: %lld vs %lld\n", static_cast<long long>(a.round),
                  static_cast<long long>(b.round));
    }
    if (!(a.config == b.config)) std::printf("protocol config differs\n");
    if (a.rng_state != b.rng_state) std::printf("rng state differs\n");
    if (serialize_game(a.game) != serialize_game(b.game)) {
      std::printf("game differs\n");
    }
    if (a.counts != b.counts) {
      std::size_t diverged = 0;
      for (std::size_t i = 0; i < std::min(a.counts.size(), b.counts.size());
           ++i) {
        if (a.counts[i] != b.counts[i]) ++diverged;
      }
      std::printf("state differs on %zu strategies\n", diverged);
    }
    return 1;
  }
  if (kind == ArtifactKind::kEventLog) {
    const persist::EventLog a = persist::read_event_log(a_path);
    const persist::EventLog b = persist::read_event_log(b_path);
    const std::size_t common = std::min(a.rounds.size(), b.rounds.size());
    for (std::size_t i = 0; i < common; ++i) {
      const auto& ra = a.rounds[i];
      const auto& rb = b.rounds[i];
      bool same = ra.round == rb.round && ra.moves.size() == rb.moves.size();
      for (std::size_t m = 0; same && m < ra.moves.size(); ++m) {
        same = ra.moves[m].from == rb.moves[m].from &&
               ra.moves[m].to == rb.moves[m].to &&
               ra.moves[m].count == rb.moves[m].count;
      }
      if (!same) {
        std::printf("logs diverge at record %zu (round %lld)\n", i,
                    static_cast<long long>(ra.round));
        return 1;
      }
    }
    if (a.rounds.size() != b.rounds.size()) {
      std::printf("logs agree on %zu rounds; lengths differ (%zu vs %zu)\n",
                  common, a.rounds.size(), b.rounds.size());
      return 1;
    }
    std::printf("event logs identical (%zu rounds)\n", common);
    return 0;
  }
  usage("diff supports snapshots and event logs");
}

int replay(int argc, char** argv) {
  std::string snapshot_path, log_path, save_state_path, expect_path;
  std::string metrics_path, prom_path;
  std::int64_t to_round = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](int& j) -> const char* {
      if (j + 1 >= argc) usage("missing value for flag");
      return argv[++j];
    };
    if (flag == "--snapshot") snapshot_path = need_value(i);
    else if (flag == "--log") log_path = need_value(i);
    else if (flag == "--to") to_round = std::atoll(need_value(i));
    else if (flag == "--save-state") save_state_path = need_value(i);
    else if (flag == "--expect") expect_path = need_value(i);
    else if (flag == "--metrics") metrics_path = need_value(i);
    else if (flag == "--metrics-prom") prom_path = need_value(i);
    else usage(("unknown flag: " + flag).c_str());
  }
  if (snapshot_path.empty() || log_path.empty()) {
    usage("replay requires --snapshot and --log");
  }

  const obs::PersistIoTotals io_before = obs::persist_io_totals();
  const persist::Snapshot snapshot = persist::load_snapshot(snapshot_path);
  const persist::EventLog log = persist::read_event_log_series(log_path);
  State x = snapshot.state();
  const std::int64_t end =
      to_round >= 0 ? to_round
                    : (log.rounds.empty() ? snapshot.round
                                          : log.rounds.back().round + 1);
  const std::int64_t applied = persist::replay_rounds(
      snapshot.game, x, log.rounds, snapshot.round, end);
  std::printf("replayed %lld rounds (%lld -> %lld) with zero RNG draws\n",
              static_cast<long long>(applied),
              static_cast<long long>(snapshot.round),
              static_cast<long long>(snapshot.round + applied));
  std::printf(
      "log: %llu bytes compressed on disk, %llu uncompressed-equivalent "
      "(%.1fx)\n",
      static_cast<unsigned long long>(log.file_bytes),
      static_cast<unsigned long long>(log.v1_equivalent_bytes),
      log.file_bytes == 0 ? 0.0
                          : static_cast<double>(log.v1_equivalent_bytes) /
                                static_cast<double>(log.file_bytes));
  std::printf(
      "final: potential=%.6g  L_av=%.6g  makespan=%.6g  support=%zu\n",
      snapshot.game.potential(x), snapshot.game.average_latency(x),
      makespan(snapshot.game, x), x.support().size());
  if (!save_state_path.empty()) {
    const obs::PersistIoTotals before = obs::persist_io_totals();
    save_state(x, save_state_path);
    const std::int64_t bytes =
        obs::persist_io_totals().bytes_written - before.bytes_written;
    if (obs::kMetricsCompiled) {
      std::printf("state written to %s (%lld bytes)\n",
                  save_state_path.c_str(), static_cast<long long>(bytes));
    } else {
      std::printf("state written to %s\n", save_state_path.c_str());
    }
  }
  // Observability exports: replay.* counters plus persist I/O deltas
  // accumulated since entry (snapshot/log reads leave the write counters
  // alone; --save-state shows up here). Same sinks cid_sim/cid_sweep use.
  if (!metrics_path.empty() || !prom_path.empty()) {
    std::int64_t migrations = 0;
    for (const persist::RoundEvents& events : log.rounds) {
      if (events.round < snapshot.round) continue;
      if (events.round >= snapshot.round + applied) break;
      for (const Migration& m : events.moves) migrations += m.count;
    }
    obs::MetricsRegistry registry;
    registry.add_named("replay.rounds_applied", applied);
    registry.add_named("replay.migrations_applied", migrations);
    registry.add_named("replay.log_rounds",
                       static_cast<std::int64_t>(log.rounds.size()));
    registry.add_named("replay.log_bytes",
                       static_cast<std::int64_t>(log.file_bytes));
    const obs::PersistIoTotals io = obs::persist_io_totals();
    registry.add_named("persist.bytes_written",
                       io.bytes_written - io_before.bytes_written);
    registry.add_named("persist.writes", io.writes - io_before.writes);
    registry.add_named("persist.fsyncs", io.fsyncs - io_before.fsyncs);
    registry.add_named("persist.fflushes",
                       io.fflushes - io_before.fflushes);
    if (!metrics_path.empty()) {
      obs::JsonlSink sink(metrics_path);
      sink.write(registry.snapshot());
      sink.close();
      std::printf("wrote %s (%llu bytes)\n", sink.path().c_str(),
                  static_cast<unsigned long long>(sink.bytes_written()));
    }
    if (!prom_path.empty()) {
      obs::write_prometheus(prom_path, registry.snapshot());
      std::printf("wrote %s\n", prom_path.c_str());
    }
  }
  if (!expect_path.empty()) {
    const persist::Snapshot expect = persist::load_snapshot(expect_path);
    if (expect.state() == x && expect.round == snapshot.round + applied) {
      std::printf("matches %s exactly\n", expect_path.c_str());
    } else {
      std::printf("MISMATCH against %s\n", expect_path.c_str());
      return 1;
    }
  }
  return 0;
}

// `cid_replay telemetry`: the offline regeneration leg of the telemetry
// purity contract. Walks the event log exactly like replay_rounds (same
// gapless validation) but fires the recorder on the PRE-round state with
// that round's logged moves before applying them — the same observation
// points the live engine observer sees — then mirrors the engines' final
// observer call and resolves convergence through the snapshot's recorded
// stop spec. The resulting file is byte-identical to a live capture at
// the same stride, with zero RNG draws.
int replay_telemetry(int argc, char** argv) {
  std::string snapshot_path, log_path, out_path;
  std::int64_t to_round = -1;
  std::int64_t every = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](int& j) -> const char* {
      if (j + 1 >= argc) usage("missing value for flag");
      return argv[++j];
    };
    if (flag == "--snapshot") snapshot_path = need_value(i);
    else if (flag == "--log") log_path = need_value(i);
    else if (flag == "--telemetry") out_path = need_value(i);
    else if (flag == "--to") to_round = std::atoll(need_value(i));
    else if (flag == "--telemetry-every") every = std::atoll(need_value(i));
    else usage(("unknown flag: " + flag).c_str());
  }
  if (snapshot_path.empty() || log_path.empty() || out_path.empty()) {
    usage("telemetry requires --snapshot, --log, and --telemetry");
  }
  if (every < 1) usage("--telemetry-every must be >= 1");

  const persist::Snapshot snapshot = persist::load_snapshot(snapshot_path);
  const persist::EventLog log = persist::read_event_log_series(log_path);
  State x = snapshot.state();
  const std::int64_t end =
      to_round >= 0 ? to_round
                    : (log.rounds.empty() ? snapshot.round
                                          : log.rounds.back().round + 1);

  obs::TelemetryRecorder recorder(every);
  std::int64_t applied = 0;
  for (const persist::RoundEvents& events : log.rounds) {
    if (events.round < snapshot.round) continue;
    if (events.round >= end) break;
    if (events.round != snapshot.round + applied) {
      throw std::runtime_error(
          "event log round " + std::to_string(events.round) +
          " breaks gapless ordering (expected " +
          std::to_string(snapshot.round + applied) + ")");
    }
    recorder.observe(snapshot.game, x, events.moves, events.round, false);
    x.apply(snapshot.game, events.moves);
    ++applied;
  }
  const std::int64_t final_round = snapshot.round + applied;
  recorder.observe(snapshot.game, x, {}, final_round, true);
  // The engines cannot know convergence at the final observer call and
  // neither can a replay; a live run's RunResult supplies it there, the
  // snapshot's stop spec evaluated on the final state supplies it here
  // (bitwise-equal verdicts — see persist::stop_from_spec).
  const StopPredicate stop = persist::stop_from_spec(snapshot.config.stop);
  recorder.finish(stop(snapshot.game, x, final_round));

  const std::uint64_t bytes =
      obs::write_telemetry_file(out_path, recorder.records());
  std::printf("replayed %lld rounds (%lld -> %lld) with zero RNG draws\n",
              static_cast<long long>(applied),
              static_cast<long long>(snapshot.round),
              static_cast<long long>(final_round));
  std::printf("telemetry written to %s (%zu records, %llu bytes)\n",
              out_path.c_str(), recorder.records().size(),
              static_cast<unsigned long long>(bytes));
  return 0;
}

int export_snapshot(int argc, char** argv) {
  if (argc < 3) usage("export requires a snapshot path");
  const std::string snapshot_path = argv[2];
  std::string game_path, state_path;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](int& j) -> const char* {
      if (j + 1 >= argc) usage("missing value for flag");
      return argv[++j];
    };
    if (flag == "--game") game_path = need_value(i);
    else if (flag == "--state") state_path = need_value(i);
    else usage(("unknown flag: " + flag).c_str());
  }
  if (game_path.empty() && state_path.empty()) {
    usage("export requires --game and/or --state output paths");
  }
  const persist::Snapshot snapshot = persist::load_snapshot(snapshot_path);
  // Byte counts come from the persist I/O registry (src/obs/metrics.hpp)
  // — the same counters cid_sweep's summary reports — with a slurp
  // fallback for CID_METRICS=0 builds where the registry stays zero.
  auto written_bytes = [](const obs::PersistIoTotals& before,
                          const std::string& path) {
    const std::int64_t delta =
        obs::persist_io_totals().bytes_written - before.bytes_written;
    return obs::kMetricsCompiled
               ? static_cast<std::uint64_t>(delta)
               : static_cast<std::uint64_t>(
                     persist::slurp_file(path).size());
  };
  std::uint64_t text_bytes = 0;
  if (!game_path.empty()) {
    const obs::PersistIoTotals before = obs::persist_io_totals();
    save_game(snapshot.game, game_path);
    const std::uint64_t bytes = written_bytes(before, game_path);
    text_bytes += bytes;
    std::printf("game written to %s (%llu bytes)\n", game_path.c_str(),
                static_cast<unsigned long long>(bytes));
  }
  if (!state_path.empty()) {
    const obs::PersistIoTotals before = obs::persist_io_totals();
    save_state(snapshot.state(), state_path);
    const std::uint64_t bytes = written_bytes(before, state_path);
    text_bytes += bytes;
    std::printf("state written to %s (%llu bytes)\n", state_path.c_str(),
                static_cast<unsigned long long>(bytes));
  }
  const std::uint64_t snapshot_bytes =
      persist::slurp_file(snapshot_path).size();
  std::printf("exported %llu text bytes from a %llu-byte binary snapshot\n",
              static_cast<unsigned long long>(text_bytes),
              static_cast<unsigned long long>(snapshot_bytes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string command = argv[1];
  try {
    if (command == "--help" || command == "-h") usage(nullptr);
    if (command == "inspect") {
      if (argc != 3) usage("inspect takes exactly one file");
      return inspect(argv[2]);
    }
    if (command == "diff") {
      if (argc != 4) usage("diff takes exactly two files");
      return diff(argv[2], argv[3]);
    }
    if (command == "replay") return replay(argc, argv);
    if (command == "telemetry") return replay_telemetry(argc, argv);
    if (command == "export") return export_snapshot(argc, argv);
    usage(("unknown subcommand: " + command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cid_replay: %s\n", e.what());
    return 1;
  }
}
