// cid_sweep — parallel scenario-sweep driver.
//
//   cid_sweep --scenario NAME [--grid "n=1000:100000:log"]
//             [--protocols imitation,exploration,combined[:P]]
//             [--trials T] [--threads K] [--seed S]
//             [--rounds N] [--check-interval C]
//             [--stop stable|nash|deltaeps:D,E]
//             [--engine aggregate|perplayer]
//             [--param key=value ...] [--lambda L]
//             [--out PREFIX] [--list]
//             [--manifest PATH | --resume PATH] [--checkpoint-every K]
//             [--max-new-trials N]
//             [--metrics PATH [--metrics-every N]] [--metrics-prom PATH]
//             [--telemetry PATH [--telemetry-every N]]
//             [--trace PATH [--trace-sample K]]
//             [--progress [SEC]]
//             [--trial-retries N] [--watchdog SEC]
//             [--shard I/K] [--inject-faults SPEC]
//             [--connect HOST:PORT [--worker-name S]]
//
// Expands the grid scenario × protocol × n, runs every cell for --trials
// independent repetitions across --threads workers (per-trial results are
// bitwise identical for every thread count), prints the per-cell summary
// table, and with --out writes PREFIX_{trials,cells}.{csv,jsonl}.
//
// Resumable sweeps (src/persist/manifest.hpp): with --manifest, each
// completed trial is appended to a checksummed manifest; rerunning the
// same grid with the same manifest skips completed trials and merges their
// recorded outcomes, so an interrupted grid continues where it stopped and
// the final outputs are byte-identical to an uninterrupted run's at every
// thread count. --resume is --manifest that insists the file exists.
//
// Observability (src/obs/): --metrics streams JSONL (per-trial rows in
// deterministic trial order plus registry snapshots), --metrics-prom
// writes a Prometheus text exposition, --telemetry captures the tagged
// per-round convergence series (one "round"/"final" record per sampled
// round per trial plus a per-trial "summary" row), --trace records a
// Chrome trace-event timeline of the worker pool and sampled engine
// phases, --progress prints a live heartbeat to stderr. All are pure
// observation — trial outcomes, manifests, and CSV/JSONL outputs stay
// byte-identical with them on or off, and none consume RNG.
//
// Robustness (src/util/fault.hpp, src/sweep/shard.hpp): a throwing trial
// is retried up to --trial-retries attempts with a fresh copy of its Rng
// stream (a successful retry reproduces the identical result); trials
// that exhaust the budget are reported and cid_sweep exits 3 — they never
// kill the sweep. --watchdog flags stuck trials on stderr. --shard I/K
// runs only shard I of K (each shard writes its own manifest;
// tools/cid_merge.cpp merges them into the canonical unsharded file).
// --inject-faults arms the deterministic fault-injection layer used by
// the robustness tests and CI.
//
// Worker mode (src/serve/worker.hpp): --connect HOST:PORT turns this
// process into a lease-protocol worker for a cid_serve coordinator
// running the SAME grid flags (the handshake compares grid fingerprints).
// Trials are leased one at a time, run through the identical
// retry/backoff machinery with the identical derive_trial_rng streams,
// and streamed back with the worker's metrics_version-stamped registry
// snapshot; the coordinator owns the manifest, so --manifest/--out/--shard
// do not combine with --connect.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "cid/cid.hpp"
#include "serve/net.hpp"
#include "serve/worker.hpp"
#include "sweep/shard.hpp"
#include "util/fault.hpp"

namespace {

using namespace cid;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: cid_sweep --scenario NAME [options]\n"
      "  --scenario NAME   scenario to sweep (--list shows all)\n"
      "  --grid SPEC       n axis: A:B:log[:K] | A:B:lin[:K] | v1,v2,...\n"
      "                    (default 1000:100000:log)\n"
      "  --protocols CSV   imitation,exploration,combined[:P]\n"
      "                    (default imitation)\n"
      "  --trials T        independent trials per cell, default 8\n"
      "  --threads K       worker threads, 0 = hardware, default 0\n"
      "  --seed S          master seed, default 1\n"
      "  --rounds N        round cap per trial, default 100000\n"
      "  --check-interval C  stop-check stride, default 1\n"
      "  --stop C          stable | nash | deltaeps:D,E (default "
      "deltaeps:0.1,0.1;\n"
      "                    asymmetric scenarios check deltaeps as the\n"
      "                    stricter class-wise nu-stability)\n"
      "  --engine E        aggregate (default) | perplayer\n"
      "  --row-threads K   threads for the per-origin row fills INSIDE one\n"
      "                    round (default 1; trials stay bitwise identical\n"
      "                    — prefer --threads unless single trials are huge)\n"
      "  --param K=V       scenario parameter (repeatable)\n"
      "  --lambda L        protocol migration scale, default 0.25\n"
      "  --out PREFIX      write PREFIX_{trials,cells}.{csv,jsonl}\n"
      "  --list            list scenarios and exit\n"
      "  --manifest PATH   resumable sweep: record completed trials in a\n"
      "                    checksummed manifest; skip them on rerun\n"
      "  --resume PATH     like --manifest, but the file must exist\n"
      "  --checkpoint-every K  flush the manifest every K trials\n"
      "                    (default 1: every completed trial durable)\n"
      "  --rotate-bytes N  rotate the manifest to PATH.<seq> segments once\n"
      "                    the active file exceeds N bytes (the whole\n"
      "                    chain is merged on load/resume)\n"
      "  --max-new-trials N    run at most N new trials, then exit\n"
      "                    incomplete (resume later with --resume)\n"
      "  --metrics PATH    append-only JSONL metrics stream: one \"trial\"\n"
      "                    record per trial (deterministic trial order)\n"
      "                    plus \"snapshot\" records of the counter registry\n"
      "  --metrics-every N also snapshot the live registry every N\n"
      "                    completed trials (default 0 = final snapshot\n"
      "                    only; requires --metrics)\n"
      "  --metrics-prom PATH  write the final registry state as\n"
      "                    Prometheus text exposition (version 0.0.4)\n"
      "  --telemetry PATH  write the tagged per-round convergence series\n"
      "                    (telemetry_version JSONL: round/final records\n"
      "                    per trial in deterministic trial order, plus a\n"
      "                    \"summary\" row per trial with rounds_to_eps and\n"
      "                    phi_half_life). Zero RNG; resumed trials carry\n"
      "                    no records (their rounds were not re-run)\n"
      "  --telemetry-every N  sample every N-th round (default 1;\n"
      "                    requires --telemetry)\n"
      "  --trace PATH      write a Chrome trace-event JSON timeline:\n"
      "                    per-worker sweep.trial spans (with cell args)\n"
      "                    and sampled engine phase spans. Load in\n"
      "                    chrome://tracing or Perfetto\n"
      "  --trace-sample K  sample engine phase spans every K-th round\n"
      "                    (default 64; requires --trace)\n"
      "  --progress [SEC]  live heartbeat on stderr every SEC seconds\n"
      "                    (default 5): trials done/total, rounds/s, ETA,\n"
      "                    per-cell breakdown. Observation only — outputs\n"
      "                    are byte-identical with or without it\n"
      "  --trial-retries N total attempts per trial before it is recorded\n"
      "                    as permanently failed (default 3; failures are\n"
      "                    isolated — the sweep finishes and exits 3)\n"
      "  --watchdog SEC    flag any trial still running after SEC seconds\n"
      "                    on stderr (observation only; default off)\n"
      "  --shard I/K       run only shard I of K (0 <= I < K): a\n"
      "                    deterministic hash of (cell, trial) picks each\n"
      "                    trial's shard, so the K shards partition the\n"
      "                    grid without coordination. Requires --manifest;\n"
      "                    merge the shard manifests with cid_merge\n"
      "  --inject-faults SPEC  arm the deterministic fault-injection layer\n"
      "                    (tests/CI): \"seed=S;SITE:KIND[:hit=N][:every=N]"
      "\n"
      "                    [:p=P][:count=K]\", kinds err|short|enospc|crash"
      "\n"
      "                    at sites like manifest.append, eventlog.block\n"
      "                    (accepted but inert when built -DCID_FAULTS=OFF)"
      "\n"
      "  --connect HOST:PORT  worker mode: lease trials from a cid_serve\n"
      "                    coordinator serving the SAME grid flags (the\n"
      "                    handshake checks the grid fingerprint) and\n"
      "                    stream outcomes + metrics back. The coordinator\n"
      "                    owns the manifest: --manifest/--resume/--shard/\n"
      "                    --out do not combine with --connect, and\n"
      "                    --max-new-trials bounds how many leases this\n"
      "                    worker takes\n"
      "  --worker-name S   name reported to the coordinator (diagnostics;\n"
      "                    default cid_sweep)\n");
  std::exit(error == nullptr ? 0 : 2);
}

void list_scenarios() {
  std::printf("registered scenarios:\n");
  for (const sweep::Scenario& s : sweep::all_scenarios()) {
    std::printf("  %-18s %s\n", s.name.c_str(), s.summary.c_str());
  }
}

struct Options {
  sweep::SweepGrid grid;
  sweep::SweepOptions run;
  std::string out_prefix;
  bool resume_required = false;
  std::string metrics_path;
  std::int64_t metrics_every = 0;
  std::string prom_path;
  std::string telemetry_path;
  std::int64_t telemetry_every = 0;  // 0 = unset (defaults to 1)
  std::string trace_path;
  std::int64_t trace_sample = 0;  // 0 = unset (library default, 64)
  std::string fault_spec;
  std::string connect;  // HOST:PORT — worker mode when non-empty
  std::string worker_name;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.grid.ns = sweep::parse_grid_axis("1000:100000:log");
  opt.grid.protocols = sweep::parse_protocol_list("imitation");
  opt.run.threads = 0;
  double lambda = 0.25;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for flag");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(nullptr);
    else if (flag == "--list") {
      list_scenarios();
      std::exit(0);
    } else if (flag == "--scenario") opt.grid.scenario.name = need_value(i);
    else if (flag == "--grid") {
      opt.grid.ns = sweep::parse_grid_axis(need_value(i));
    } else if (flag == "--protocols") {
      opt.grid.protocols = sweep::parse_protocol_list(need_value(i));
    } else if (flag == "--trials") opt.grid.trials = std::atoi(need_value(i));
    else if (flag == "--threads") opt.run.threads = std::atoi(need_value(i));
    else if (flag == "--seed") {
      opt.grid.master_seed =
          static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (flag == "--rounds") {
      opt.grid.dynamics.max_rounds = std::atoll(need_value(i));
    } else if (flag == "--check-interval") {
      opt.grid.dynamics.check_interval = std::atoll(need_value(i));
    } else if (flag == "--stop") {
      const std::string v = need_value(i);
      if (v == "stable") {
        opt.grid.dynamics.stop = sweep::StopRule::kImitationStable;
      } else if (v == "nash") {
        opt.grid.dynamics.stop = sweep::StopRule::kNash;
      } else if (v.rfind("deltaeps:", 0) == 0) {
        opt.grid.dynamics.stop = sweep::StopRule::kDeltaEps;
        if (std::sscanf(v.c_str(), "deltaeps:%lf,%lf",
                        &opt.grid.dynamics.delta,
                        &opt.grid.dynamics.eps) != 2) {
          usage("expected --stop deltaeps:D,E");
        }
      } else {
        usage("unknown stop condition");
      }
    } else if (flag == "--engine") {
      const std::string v = need_value(i);
      if (v == "aggregate") opt.grid.dynamics.mode = EngineMode::kAggregate;
      else if (v == "perplayer") {
        opt.grid.dynamics.mode = EngineMode::kPerPlayer;
      } else usage("unknown engine");
    } else if (flag == "--row-threads") {
      opt.grid.dynamics.row_threads = std::atoi(need_value(i));
    } else if (flag == "--manifest") {
      opt.run.manifest_path = need_value(i);
    } else if (flag == "--resume") {
      opt.run.manifest_path = need_value(i);
      opt.resume_required = true;
    } else if (flag == "--checkpoint-every") {
      opt.run.manifest_flush_every = std::atoll(need_value(i));
    } else if (flag == "--rotate-bytes") {
      opt.run.manifest_rotate_bytes =
          static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (flag == "--max-new-trials") {
      opt.run.max_new_trials = std::atoll(need_value(i));
    } else if (flag == "--metrics") {
      opt.metrics_path = need_value(i);
    } else if (flag == "--metrics-every") {
      opt.metrics_every = std::atoll(need_value(i));
    } else if (flag == "--metrics-prom") {
      opt.prom_path = need_value(i);
    } else if (flag == "--telemetry") {
      opt.telemetry_path = need_value(i);
    } else if (flag == "--telemetry-every") {
      opt.telemetry_every = std::atoll(need_value(i));
    } else if (flag == "--trace") {
      opt.trace_path = need_value(i);
    } else if (flag == "--trace-sample") {
      opt.trace_sample = std::atoll(need_value(i));
    } else if (flag == "--progress") {
      // Optional value: "--progress 2.5" or bare "--progress" (5 s).
      opt.run.progress_every_seconds = 5.0;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opt.run.progress_every_seconds = std::atof(argv[++i]);
      }
    } else if (flag == "--trial-retries") {
      opt.run.trial_max_attempts = std::atoi(need_value(i));
    } else if (flag == "--watchdog") {
      opt.run.watchdog_seconds = std::atof(need_value(i));
    } else if (flag == "--shard") {
      const sweep::ShardSpec shard = sweep::parse_shard_spec(need_value(i));
      opt.run.shard_index = shard.index;
      opt.run.shard_count = shard.count;
    } else if (flag == "--inject-faults") {
      opt.fault_spec = need_value(i);
    } else if (flag == "--connect") {
      opt.connect = need_value(i);
    } else if (flag == "--worker-name") {
      opt.worker_name = need_value(i);
    } else if (flag == "--param") {
      const std::string kv = need_value(i);
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) usage("expected --param K=V");
      opt.grid.scenario.params[kv.substr(0, eq)] =
          std::atof(kv.c_str() + eq + 1);
    } else if (flag == "--lambda") lambda = std::atof(need_value(i));
    else if (flag == "--out") opt.out_prefix = need_value(i);
    else usage(("unknown flag: " + flag).c_str());
  }
  if (opt.grid.scenario.name.empty()) usage("--scenario is required");
  if (opt.grid.trials < 1) usage("--trials must be >= 1");
  if (opt.grid.dynamics.check_interval < 1) {
    usage("--check-interval must be >= 1");
  }
  if (opt.grid.dynamics.max_rounds < 0) usage("--rounds must be >= 0");
  if (opt.run.threads < 0) usage("--threads must be >= 0");
  if (opt.grid.dynamics.row_threads < 1) {
    usage("--row-threads must be >= 1");
  }
  if (opt.run.manifest_flush_every < 1) {
    usage("--checkpoint-every must be >= 1");
  }
  if (opt.run.manifest_rotate_bytes > 0 && opt.run.manifest_path.empty()) {
    usage("--rotate-bytes requires --manifest or --resume");
  }
  if (opt.resume_required &&
      !std::filesystem::exists(opt.run.manifest_path)) {
    usage("--resume: manifest file does not exist (use --manifest to "
          "start a fresh resumable sweep)");
  }
  if (lambda <= 0.0 || lambda > 1.0) usage("lambda out of (0,1]");
  if (opt.metrics_every < 0) usage("--metrics-every must be >= 0");
  if (opt.metrics_every > 0 && opt.metrics_path.empty()) {
    usage("--metrics-every requires --metrics");
  }
  if (opt.telemetry_every < 0) usage("--telemetry-every must be >= 1");
  if (opt.telemetry_every > 0 && opt.telemetry_path.empty()) {
    usage("--telemetry-every requires --telemetry");
  }
  if (opt.trace_sample < 0) usage("--trace-sample must be >= 1");
  if (opt.trace_sample > 0 && opt.trace_path.empty()) {
    usage("--trace-sample requires --trace");
  }
  if (opt.run.progress_every_seconds < 0.0) {
    usage("--progress seconds must be >= 0");
  }
  if (opt.run.trial_max_attempts < 1) {
    usage("--trial-retries must be >= 1");
  }
  if (opt.run.watchdog_seconds < 0.0) usage("--watchdog must be >= 0");
  if (opt.run.shard_count > 1) {
    if (opt.run.manifest_path.empty()) {
      usage("--shard requires --manifest (each shard persists its own\n"
            "manifest; cid_merge combines them)");
    }
    if (!opt.out_prefix.empty()) {
      usage("--out is not supported with --shard: merge the shard\n"
            "manifests with cid_merge, then rerun unsharded with --resume");
    }
  }
  if (!opt.connect.empty()) {
    // Worker mode streams outcomes to the coordinator, which owns every
    // output artifact; local persistence/output flags would silently
    // produce partial files, so they are rejected outright.
    if (!opt.run.manifest_path.empty()) {
      usage("--connect: the coordinator owns the manifest (drop "
            "--manifest/--resume)");
    }
    if (opt.run.shard_count > 1) usage("--connect does not combine with --shard");
    if (!opt.out_prefix.empty()) usage("--connect does not combine with --out");
    if (!opt.metrics_path.empty() || !opt.prom_path.empty() ||
        !opt.telemetry_path.empty() || !opt.trace_path.empty()) {
      usage("--connect: metrics stream to the coordinator's fleet "
            "endpoint (drop --metrics/--metrics-prom/--telemetry/--trace)");
    }
  }
  if (!opt.worker_name.empty() && opt.connect.empty()) {
    usage("--worker-name requires --connect");
  }
  // Parse (and, when compiled in, arm) the fault schedule here so a bad
  // spec exits 2 like any other flag-value error. A -DCID_FAULTS=OFF
  // build still accepts and validates the flag — the CLI surface is
  // identical — it just never fires.
  if (!opt.fault_spec.empty()) {
    util::configure_faults(opt.fault_spec);
    if (!util::kFaultsCompiled) {
      std::fprintf(stderr,
                   "cid_sweep: note: built with CID_FAULTS=OFF — "
                   "--inject-faults accepted but inert\n");
    }
  }
  for (auto& protocol : opt.grid.protocols) protocol.lambda = lambda;
  // Per-trial engine metering is opt-in: only pay for the phase timers
  // when something will report them.
  if (!opt.metrics_path.empty() || !opt.prom_path.empty()) {
    opt.grid.dynamics.collect_metrics = true;
  }
  // Telemetry rides inside the trials (each TrialStats carries its
  // series); deliberately NOT part of the manifest fingerprint, like
  // collect_metrics — a telemetry-capturing rerun resumes plain sweeps.
  if (!opt.telemetry_path.empty()) {
    opt.grid.dynamics.telemetry_every =
        opt.telemetry_every > 0 ? opt.telemetry_every : 1;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    // Bad flag *values* (grid/protocol/param syntax) land here; bad flag
    // *shapes* exit through usage() directly.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  try {
    if (!opt.connect.empty()) {
      const auto [host, port] = serve::parse_host_port(opt.connect);
      serve::WorkerOptions worker;
      worker.host = host;
      worker.port = port;
      worker.name = opt.worker_name.empty() ? "cid_sweep" : opt.worker_name;
      worker.trial_max_attempts = opt.run.trial_max_attempts;
      worker.retry_backoff_ms = opt.run.retry_backoff_ms;
      worker.retry_backoff_max_ms = opt.run.retry_backoff_max_ms;
      worker.max_trials = opt.run.max_new_trials;
      std::printf("worker %s: leasing trials from %s:%u\n",
                  worker.name.c_str(), host.c_str(), port);
      const serve::WorkerReport report = serve::run_worker(opt.grid, worker);
      std::printf(
          "worker %s: completed %zu trial(s) (%lld retried), requeued %zu, "
          "%zu lease(s) lost, %zu reconnect(s)%s\n",
          worker.name.c_str(), report.trials_completed,
          static_cast<long long>(report.trial_retries),
          report.trials_requeued, report.leases_lost, report.reconnects,
          report.drained ? "; grid drained" : "");
      if (util::faults_armed()) {
        std::printf("faults injected: %lld\n",
                    static_cast<long long>(util::faults_injected()));
      }
      // Requeued trials exhausted THIS worker's retry budget — another
      // worker may still land them, but this process degraded: exit 3
      // like a local sweep with permanent failures.
      return report.trials_requeued > 0 ? 3 : 0;
    }

    const auto instance =
        sweep::make_scenario(opt.grid.scenario, opt.grid.ns.front());
    std::printf("sweep: %s\n", instance->describe().c_str());
    std::printf(
        "grid: %zu n-values x %zu protocols x %d trials = %zu trial runs, "
        "%d threads\n\n",
        opt.grid.ns.size(), opt.grid.protocols.size(), opt.grid.trials,
        opt.grid.ns.size() * opt.grid.protocols.size() *
            static_cast<std::size_t>(opt.grid.trials),
        sweep::resolve_threads(opt.run.threads));
    if (opt.run.shard_count > 1) {
      std::printf("shard %d/%d: running only this shard's trials\n",
                  opt.run.shard_index, opt.run.shard_count);
    }

    // Observability plumbing. The registry is filled twice: the optional
    // live hook accumulates in completion order for intermediate
    // snapshots, then after the run it is rebuilt deterministically from
    // the result (same totals, plus manifest-resumed trials).
    const obs::PersistIoTotals io_before = obs::persist_io_totals();
    obs::MetricsRegistry registry;
    const auto trial_rounds_hist = registry.histogram(
        "sweep.trial_rounds", {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6});
    std::unique_ptr<obs::JsonlSink> sink;
    if (!opt.metrics_path.empty()) {
      sink = std::make_unique<obs::JsonlSink>(opt.metrics_path);
    }
    if (sink != nullptr && opt.metrics_every > 0) {
      opt.run.on_trial_done = [&](const sweep::TrialRow& row,
                                  const sweep::TrialStats& stats,
                                  std::size_t done, std::size_t total) {
        registry.merge_engine("", stats.engine);
        registry.add_named("sweep.latency_evals", stats.latency_evals);
        registry.add_named("sweep.ran_rounds", stats.ran_rounds);
        registry.observe(trial_rounds_hist, row.outcome.rounds);
        if (done % static_cast<std::size_t>(opt.metrics_every) == 0 &&
            done < total) {
          sink->write(registry.snapshot());
        }
      };
    }
    if (opt.run.progress_every_seconds > 0.0) {
      opt.run.progress = [](const obs::ProgressSnapshot& snapshot) {
        std::fprintf(stderr, "%s\n",
                     obs::format_progress(snapshot).c_str());
      };
    }

    // Arm tracing before the pool spins up so worker registration and the
    // first trials land inside the capture window.
    if (!opt.trace_path.empty()) {
      if (opt.trace_sample > 0) {
        obs::set_trace_engine_sample_interval(opt.trace_sample);
      }
      obs::start_tracing();
    }

    const WallTimer timer;
    const sweep::SweepResult result = sweep::run_sweep(opt.grid, opt.run);
    const double elapsed = timer.seconds();

    auto print_persist_io = [&]() {
      const obs::PersistIoTotals io = obs::persist_io_totals();
      const std::int64_t bytes = io.bytes_written - io_before.bytes_written;
      const std::int64_t writes = io.writes - io_before.writes;
      if (writes == 0) return;
      std::printf(
          "persist io: %lld bytes in %lld writes, %lld fsyncs, "
          "%lld fflushes\n",
          static_cast<long long>(bytes), static_cast<long long>(writes),
          static_cast<long long>(io.fsyncs - io_before.fsyncs),
          static_cast<long long>(io.fflushes - io_before.fflushes));
    };

    // Final metrics outputs: rebuild the registry from the deterministic
    // result, append per-trial rows in trial order, then the closing
    // snapshot (and the Prometheus exposition, when asked for).
    auto write_metrics_outputs = [&]() {
      if (sink == nullptr && opt.prom_path.empty()) return;
      registry.reset_values();
      registry.merge_engine("", result.engine);
      registry.add_named("sweep.trials_total",
                         static_cast<std::int64_t>(result.trials.size()));
      registry.add_named("sweep.trials_run",
                         static_cast<std::int64_t>(result.ran_trials));
      registry.add_named(
          "sweep.trials_resumed",
          static_cast<std::int64_t>(result.resumed_trials));
      registry.add_named("sweep.ran_rounds", result.ran_rounds);
      registry.add_named("sweep.latency_evals", result.latency_evals);
      registry.add_named("sweep.queue_wait_ns", result.queue_wait_ns);
      registry.add_named("sweep.trial_run_ns", result.trial_run_ns);
      registry.add_named("sweep.trial_retries", result.trial_retries);
      registry.add_named("sweep.trial_failures",
                         static_cast<std::int64_t>(result.failures.size()));
      for (const sweep::TrialRow& row : result.trials) {
        registry.observe(trial_rounds_hist, row.outcome.rounds);
      }
      const obs::PersistIoTotals io = obs::persist_io_totals();
      registry.add_named("persist.bytes_written",
                         io.bytes_written - io_before.bytes_written);
      registry.add_named("persist.writes", io.writes - io_before.writes);
      registry.add_named("persist.fsyncs", io.fsyncs - io_before.fsyncs);
      registry.add_named("persist.fflushes",
                         io.fflushes - io_before.fflushes);
      registry.add_named("persist.write_failures",
                         io.write_failures - io_before.write_failures);
      registry.add_named("persist.write_retries",
                         io.write_retries - io_before.write_retries);
      if (util::faults_armed()) {
        registry.add_named("fault.injected", util::faults_injected());
      }
      if (sink != nullptr) {
        for (std::size_t i = 0; i < result.trials.size(); ++i) {
          const sweep::TrialRow& row = result.trials[i];
          const sweep::TrialStats& stats = result.stats[i];
          obs::JsonObject record = sink->record("trial");
          record.num("cell", static_cast<std::int64_t>(row.key.cell))
              .str("protocol", row.key.protocol)
              .num("n", row.key.n)
              .num("trial", static_cast<std::int64_t>(row.trial))
              .num("rounds", row.outcome.rounds)
              .num("converged",
                   static_cast<std::int64_t>(row.outcome.converged))
              .num("movers", row.outcome.movers)
              .num("potential", row.outcome.potential)
              .num("social_cost", row.outcome.social_cost)
              .num("latency_evals", stats.latency_evals)
              .num("ran_rounds", stats.ran_rounds)
              .num("engine_rows_filled", stats.engine.rows_filled)
              .num("engine_rows_pruned", stats.engine.rows_pruned);
          sink->write_line(std::move(record));
        }
        sink->write(registry.snapshot());
        sink->close();
        std::printf("wrote %s (%llu bytes)\n", sink->path().c_str(),
                    static_cast<unsigned long long>(sink->bytes_written()));
      }
      if (!opt.prom_path.empty()) {
        obs::write_prometheus(opt.prom_path, registry.snapshot());
        std::printf("wrote %s\n", opt.prom_path.c_str());
      }
    };

    // Tagged multi-trial telemetry stream: every trial's sampled series in
    // deterministic trial order (result.stats is index-aligned with
    // result.trials), each line tagged with its cell identity, followed by
    // one "summary" row per trial. Resumed trials merged from a manifest
    // carry no records — their rounds were not re-executed.
    auto write_telemetry_outputs = [&]() {
      if (opt.telemetry_path.empty()) return;
      std::ofstream out(opt.telemetry_path,
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        throw std::runtime_error("cannot open telemetry path: " +
                                 opt.telemetry_path);
      }
      std::uint64_t bytes = 0;
      std::size_t recorded_trials = 0;
      auto identity = [&](obs::JsonObject& line, std::string_view kind,
                          const sweep::TrialRow& row) -> obs::JsonObject& {
        return line
            .num("telemetry_version", std::int64_t{obs::kTelemetryVersion})
            .str("kind", kind)
            .num("cell", static_cast<std::int64_t>(row.key.cell))
            .str("protocol", row.key.protocol)
            .num("n", row.key.n)
            .num("trial", static_cast<std::int64_t>(row.trial));
      };
      auto emit = [&](obs::JsonObject&& line) {
        const std::string text = line.take() + "\n";
        out.write(text.data(),
                  static_cast<std::streamsize>(text.size()));
        bytes += text.size();
      };
      for (std::size_t i = 0; i < result.trials.size(); ++i) {
        const sweep::TrialRow& row = result.trials[i];
        const sweep::TrialStats& stats = result.stats[i];
        if (stats.telemetry.empty()) continue;
        ++recorded_trials;
        for (const obs::TelemetryRecord& rec : stats.telemetry) {
          obs::JsonObject line;
          identity(line, rec.final_record ? "final" : "round", row);
          obs::append_telemetry_fields(line, rec);
          emit(std::move(line));
        }
        const obs::TelemetrySummary summary =
            obs::summarize_telemetry(stats.telemetry);
        obs::JsonObject line;
        identity(line, "summary", row)
            .num("rounds", row.outcome.rounds)
            .num("converged",
                 static_cast<std::int64_t>(row.outcome.converged))
            .num("phi_first", summary.phi_first)
            .num("phi_last", summary.phi_last)
            .num("rounds_to_eps", summary.rounds_to_eps)
            .num("phi_half_life", summary.phi_half_life);
        emit(std::move(line));
      }
      out.flush();
      if (!out) {
        throw std::runtime_error("short write to telemetry path: " +
                                 opt.telemetry_path);
      }
      out.close();
      obs::record_persist_write(bytes, 0);
      std::printf("wrote %s (%llu bytes, series for %zu of %zu trials)\n",
                  opt.telemetry_path.c_str(),
                  static_cast<unsigned long long>(bytes), recorded_trials,
                  result.trials.size());
    };

    // Drain the span buffers last so the telemetry/metrics writes above
    // appear in the timeline via their persist hooks.
    auto write_trace_output = [&]() {
      if (opt.trace_path.empty()) return;
      const std::size_t events = obs::stop_tracing_to(opt.trace_path);
      std::printf("wrote %s (%zu trace events)\n", opt.trace_path.c_str(),
                  events);
    };

    // Kernel throughput over the trials actually executed this invocation
    // (resumed trials merged from a manifest were not re-measured).
    auto print_throughput = [&]() {
      if (result.ran_trials == 0 || elapsed <= 0.0) return;
      std::printf(
          "throughput: %.0f rounds/s over %zu trials; %lld latency evals "
          "(%.2f per round)\n",
          static_cast<double>(result.ran_rounds) / elapsed,
          result.ran_trials,
          static_cast<long long>(result.latency_evals),
          result.ran_rounds == 0
              ? 0.0
              : static_cast<double>(result.latency_evals) /
                    static_cast<double>(result.ran_rounds));
    };

    // Robustness summary. Returns the process exit code: 0 when every
    // trial landed (retried-but-recovered trials are fine), 3 when any
    // trial permanently failed or the manifest was disabled mid-run —
    // loud in the summary AND in the exit status, so wrapping scripts
    // cannot mistake a degraded sweep for a clean one.
    auto report_failures = [&]() -> int {
      if (result.trial_retries > 0) {
        std::printf("trial retries: %lld transient failure(s) recovered "
                    "by retry\n",
                    static_cast<long long>(result.trial_retries));
      }
      if (result.watchdog_flags > 0) {
        std::printf("watchdog: %lld trial(s) flagged as slow/stuck\n",
                    static_cast<long long>(result.watchdog_flags));
      }
      if (util::faults_armed()) {
        std::printf("faults injected: %lld\n",
                    static_cast<long long>(util::faults_injected()));
      }
      int code = 0;
      if (!result.failures.empty()) {
        std::printf("sweep FAILED: %zu trial(s) permanently failed "
                    "(excluded from aggregation); exiting 3\n",
                    result.failures.size());
        for (const sweep::TrialFailure& failure : result.failures) {
          std::printf("  cell %d (%s, %s, n=%lld) trial %d: %s "
                      "(after %d attempts)\n",
                      failure.key.cell, failure.key.scenario.c_str(),
                      failure.key.protocol.c_str(),
                      static_cast<long long>(failure.key.n), failure.trial,
                      failure.error.c_str(), failure.attempts);
        }
        code = 3;
      }
      if (result.manifest_degraded) {
        std::printf("manifest DEGRADED: %s — the on-disk manifest is "
                    "missing trials (a resume would re-run them); "
                    "exiting 3\n",
                    result.manifest_error.c_str());
        code = 3;
      }
      return code;
    };

    if (result.resumed_trials > 0) {
      std::printf("resumed %zu completed trials from %s\n",
                  result.resumed_trials, opt.run.manifest_path.c_str());
    }
    if (!result.complete) {
      std::printf(
          "ran %zu new trials in %.3f s; sweep INCOMPLETE "
          "(%zu of %zu trials done) — continue with --resume %s\n",
          result.ran_trials, elapsed,
          result.resumed_trials + result.ran_trials, result.trials.size(),
          opt.run.manifest_path.c_str());
      print_throughput();
      write_telemetry_outputs();
      print_persist_io();
      write_metrics_outputs();
      write_trace_output();
      return report_failures();
    }

    if (result.sharded) {
      // Cells are not aggregated in sharded mode (each shard sees only
      // its own trials); the shard's manifest is the product.
      std::printf(
          "shard %d/%d: ran %zu trials (resumed %zu) in %.3f s; merge the "
          "shard manifests with cid_merge to recover the full sweep\n",
          opt.run.shard_index, opt.run.shard_count, result.ran_trials,
          result.resumed_trials, elapsed);
      print_throughput();
      write_telemetry_outputs();
      print_persist_io();
      write_metrics_outputs();
      write_trace_output();
      return report_failures();
    }

    Table table({"cell", "protocol", "n", "rounds", "converged",
                 "mean potential", "mean social cost", "wall s"});
    for (const sweep::CellRow& cell : result.cells) {
      table.row()
          .cell(static_cast<std::int64_t>(cell.key.cell))
          .cell(cell.key.protocol)
          .cell(cell.key.n)
          .cell_pm(cell.rounds.mean, cell.rounds_sem, 1)
          .cell(cell.fraction_converged, 2)
          .cell(cell.mean_potential, 1)
          .cell(cell.mean_social_cost, 1)
          .cell(cell.wall_seconds, 3);
    }
    table.print("per-cell summary (" + opt.grid.scenario.name + ")");
    std::printf("\nswept %zu trials in %.3f s\n", result.trials.size(),
                elapsed);
    print_throughput();

    if (!opt.out_prefix.empty()) {
      std::uint64_t text_bytes = 0;
      for (const sweep::WrittenFile& file :
           sweep::write_sweep_outputs(opt.out_prefix, result)) {
        std::printf("wrote %s (%llu bytes)\n", file.path.c_str(),
                    static_cast<unsigned long long>(file.bytes));
        text_bytes += file.bytes;
      }
      if (!opt.run.manifest_path.empty()) {
        // Compressed-vs-uncompressed observability: the binary manifest
        // chain is the compact representation of the same trial set.
        std::uint64_t manifest_bytes = 0;
        std::error_code ec;
        auto segments = persist::chain_segments(opt.run.manifest_path);
        segments.push_back(opt.run.manifest_path);
        for (const std::string& segment : segments) {
          const auto size = std::filesystem::file_size(segment, ec);
          if (!ec) manifest_bytes += size;
        }
        std::printf(
            "manifest: %llu bytes binary (compressed representation) vs "
            "%llu bytes CSV/JSONL text (%.1fx)\n",
            static_cast<unsigned long long>(manifest_bytes),
            static_cast<unsigned long long>(text_bytes),
            manifest_bytes == 0 ? 0.0
                                : static_cast<double>(text_bytes) /
                                      static_cast<double>(manifest_bytes));
      }
    }
    write_telemetry_outputs();
    print_persist_io();
    write_metrics_outputs();
    write_trace_output();
    return report_failures();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cid_sweep: %s\n", e.what());
    return 1;
  }
  return 0;
}
