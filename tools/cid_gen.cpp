// cid_gen — instance generator emitting the cid-game v1 text format.
//
//   cid_gen --family F --out FILE [--players N] [--links M] [--degree D]
//           [--width W] [--depth L] [--seed S]
//
// Families:
//   links      M parallel links, a_e*x^D with a_e spread over [1, 2]
//   uniform    M identical parallel links a=1, degree D
//   braess     the 4-node Braess network (mixed linear/constant)
//   layered    WxL layered network, random linear/quadratic edges
//   overshoot  the paper's two-link c vs x^D example
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cid/cid.hpp"

namespace {

using namespace cid;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: cid_gen --family F --out FILE [options]\n"
               "  families: links | uniform | braess | layered | overshoot\n"
               "  --players N  (default 1000)   --links M  (default 8)\n"
               "  --degree D   (default 1)      --width W  (default 3)\n"
               "  --depth L    (default 2)      --seed S   (default 1)\n");
  std::exit(error == nullptr ? 0 : 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string family, out;
  std::int64_t players = 1000;
  std::int32_t links = 8, width = 3, depth = 2;
  double degree = 1.0;
  std::uint64_t seed = 1;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for flag");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(nullptr);
    else if (flag == "--family") family = need_value(i);
    else if (flag == "--out") out = need_value(i);
    else if (flag == "--players") players = std::atoll(need_value(i));
    else if (flag == "--links") links = std::atoi(need_value(i));
    else if (flag == "--degree") degree = std::atof(need_value(i));
    else if (flag == "--width") width = std::atoi(need_value(i));
    else if (flag == "--depth") depth = std::atoi(need_value(i));
    else if (flag == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else usage(("unknown flag: " + flag).c_str());
  }
  if (family.empty()) usage("--family is required");
  if (out.empty()) usage("--out is required");

  try {
    Rng rng(seed);
    auto build = [&]() -> CongestionGame {
      if (family == "links") {
        std::vector<LatencyPtr> fns;
        for (std::int32_t e = 0; e < links; ++e) {
          const double a =
              1.0 + static_cast<double>(e) / static_cast<double>(links);
          fns.push_back(make_monomial(a, degree));
        }
        return make_singleton_game(std::move(fns), players);
      }
      if (family == "uniform") {
        return make_uniform_links_game(links, make_monomial(1.0, degree),
                                       players);
      }
      if (family == "braess") {
        const auto net = make_braess_network();
        std::vector<LatencyPtr> fns{make_linear(1.0), make_constant(10.0),
                                    make_constant(10.0), make_linear(1.0),
                                    make_constant(1.0)};
        return make_network_game(net, std::move(fns), players);
      }
      if (family == "layered") {
        const auto net = make_layered_network(width, depth);
        std::vector<LatencyPtr> fns;
        for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
          const double a = 0.5 + rng.uniform();
          fns.push_back(rng.bernoulli(0.5)
                            ? make_linear(a)
                            : make_monomial(0.1 * a, 2.0));
        }
        return make_network_game(net, std::move(fns), players);
      }
      if (family == "overshoot") {
        const double x2_star = static_cast<double>(players) / 4.0;
        double c = 1.0;
        for (int k = 0; k < static_cast<int>(degree); ++k) c *= x2_star;
        return make_overshoot_example(c, 1.0, degree, players);
      }
      usage("unknown family");
    };
    const CongestionGame game = build();
    save_game(game, out);
    std::printf("wrote %s: %s\n", out.c_str(), game.describe().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cid_gen: %s\n", e.what());
    return 1;
  }
  return 0;
}
